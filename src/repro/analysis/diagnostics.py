"""Structured diagnostics: stable codes, severities, reports.

Every condition the static analyzer can detect has a stable ``DLnnn`` code
(codes are append-only: a code is never reused for a different condition,
so scripts and expected-code annotations keep working across versions).
A :class:`Diagnostic` is one finding — code, severity, message, 1-based
source position when the program came from text, the rendered clause, and
a fix hint. A :class:`Report` is the ordered collection of findings for one
program with the lint-style aggregate views (errors / warnings / clean) the
CLI ``check`` verb builds its exit code from.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator, Mapping


class Severity(enum.Enum):
    """How bad a finding is; ordered for sorting (errors first)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class CodeInfo:
    """The registry entry of one diagnostic code."""

    code: str
    severity: Severity
    title: str
    explanation: str


CODES: Mapping[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "DL000",
            Severity.ERROR,
            "parse error",
            "The program text could not be parsed; nothing beyond the "
            "offending token was analyzed.",
        ),
        CodeInfo(
            "DL001",
            Severity.ERROR,
            "unsafe clause (range restriction)",
            "A variable of the head or of a negative body literal does not "
            "occur in any positive body literal, so the clause has no "
            "finite active-domain meaning.",
        ),
        CodeInfo(
            "DL002",
            Severity.ERROR,
            "recursion through negation",
            "The dependency graph contains a cycle through a negative arc; "
            "the program is not stratifiable and has no standard model. "
            "The diagnostic message shows a witness cycle.",
        ),
        CodeInfo(
            "DL003",
            Severity.ERROR,
            "arity mismatch",
            "A relation is used with two different arities; the evaluator "
            "would reject the program at run time.",
        ),
        CodeInfo(
            "DL004",
            Severity.WARNING,
            "undefined relation in positive literal",
            "A positive body literal references a relation that no clause "
            "concludes and no fact asserts: the body can never be "
            "satisfied, so the rule is dead until such facts arrive.",
        ),
        CodeInfo(
            "DL005",
            Severity.WARNING,
            "negated undefined relation",
            "A negative body literal references a relation that is never "
            "concluded or asserted: the negation is vacuously true. A "
            "misspelled relation name here silently widens the rule — the "
            "classic silent-bug class this analyzer exists for.",
        ),
        CodeInfo(
            "DL006",
            Severity.INFO,
            "unused relation",
            "A relation is concluded by clauses but never referenced by "
            "any rule body; it is an output (or dead code).",
        ),
        CodeInfo(
            "DL007",
            Severity.WARNING,
            "singleton variable",
            "A variable occurs exactly once in the clause. A singleton "
            "joins nothing and is usually a typo; name it with a leading "
            "underscore to state the don't-care intent.",
        ),
        CodeInfo(
            "DL008",
            Severity.WARNING,
            "duplicate rule",
            "Two rules are identical up to a consistent renaming of "
            "variables; the later one adds nothing to the model.",
        ),
        CodeInfo(
            "DL009",
            Severity.WARNING,
            "subsumed rule",
            "A rule's instances are all produced by a more general rule "
            "(its head matches under a substitution that maps the general "
            "body into the specific one); the specific rule is redundant.",
        ),
        CodeInfo(
            "DL010",
            Severity.WARNING,
            "cross-product join",
            "The positive body literals fall into two or more groups that "
            "share no variables, so evaluating the rule multiplies the "
            "groups' candidate sets — a planner performance hazard.",
        ),
        CodeInfo(
            "DL011",
            Severity.WARNING,
            "non-commuting transaction pair",
            "Two transactions of a batch have overlapping pattern cones "
            "(one's writes meet the other's reads), so applying them in "
            "different orders may yield different intermediate states; "
            "they must be serialized. The message carries the overlapping "
            "patterns and a dependency-arc witness.",
        ),
        CodeInfo(
            "DL012",
            Severity.WARNING,
            "hotspot relation",
            "A relation appears in every transaction's read cone: it is a "
            "static contention point — no batch split can place two "
            "transactions touching it in different commuting groups.",
        ),
        CodeInfo(
            "DL013",
            Severity.WARNING,
            "negation-sensitive reordering hazard",
            "An insertion's cone crosses an odd number of negative arcs "
            "into another transaction's reads: the insertion can *retract* "
            "facts the other transaction consults, the reordering class "
            "where belief-revision outcomes genuinely diverge.",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``line``/``column`` are 1-based and 0 when the program was built
    programmatically. ``clause`` is the rendered source form of the clause
    the finding anchors to (None for program-level findings). ``hint`` is a
    human fix suggestion.
    """

    code: str
    message: str
    severity: Severity = field(compare=False, default=Severity.WARNING)
    line: int = 0
    column: int = 0
    clause: str | None = None
    hint: str | None = None

    @property
    def title(self) -> str:
        return CODES[self.code].title

    def render(self, path: str | None = None) -> str:
        """One ``path:line:col: severity DLnnn: message`` line (+ hint)."""
        location = path or "<program>"
        if self.line:
            location += f":{self.line}:{self.column}"
        text = f"{location}: {self.severity} {self.code}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = str(self.severity)
        return data


def make(
    code: str,
    message: str,
    *,
    line: int = 0,
    column: int = 0,
    clause: object | None = None,
    hint: str | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic` with the registered severity of *code*."""
    return Diagnostic(
        code=code,
        message=message,
        severity=CODES[code].severity,
        line=line,
        column=column,
        clause=None if clause is None else str(clause),
        hint=hint,
    )


class Report:
    """The findings of one analyzer run, sorted and queryable."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: tuple[Diagnostic, ...] = tuple(
            sorted(
                diagnostics,
                key=lambda d: (d.severity.rank, d.line, d.column, d.code),
            )
        )

    # aggregate views --------------------------------------------------

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self._of(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self._of(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self._of(Severity.INFO)

    def _of(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No errors and no warnings (infos allowed)."""
        return not self.errors and not self.warnings

    def codes(self) -> tuple[str, ...]:
        """The distinct codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    # rendering --------------------------------------------------------

    def render(self, path: str | None = None) -> str:
        if not self.diagnostics:
            return f"{path or '<program>'}: clean"
        lines = [d.render(path) for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        return "\n".join(lines)

    def to_dict(self, path: str | None = None) -> dict:
        return {
            "path": path,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, path: str | None = None) -> str:
        return json.dumps(self.to_dict(path), sort_keys=True)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"Report({len(self.errors)} errors, {len(self.warnings)} "
            f"warnings, {len(self.infos)} infos)"
        )
