"""Static analysis of Datalog programs.

A linter and independence analyzer over the stratified substrate: where
the admission rules of :class:`~repro.datalog.database.StratifiedDatabase`
*reject* a bad update with an exception, this package *explains* a program
— every check emits structured :class:`Diagnostic` records with stable
``DLnnn`` codes, severities, source positions and fix hints, and the
non-stratifiability error comes with an explicit negative-cycle witness
path. The :class:`IndependenceReport` adds the revision-commutation view
of the dependency graph that the future concurrent revision service
shards by.

Entry points:

* :func:`analyze_program` — lint a :class:`~repro.datalog.clauses.Program`,
  clause list, or source text;
* :func:`analyze_source` — same, honouring ``% repro: allow DLnnn`` pragmas;
* :func:`independence_report` — pairwise update commutation and sharding;
* :func:`update_cone_analyzer` — argument-level pattern cones, so updates
  to the same relation under different keys can still provably commute;
* :class:`ConflictGraph` / :func:`parse_transactions` — batch admission:
  per-pair conflict witnesses, commuting-batch coloring, DL011–DL013;
* :mod:`repro.analysis.fuzz` — the differential commutation fuzzer that
  keeps the certificates honest (not re-exported here: it sits above the
  engine registry and is run as ``python -m repro.analysis.fuzz``);
* ``repro check [--json] [--workloads] [--schedule BATCH] FILE...`` and
  ``repro independence [--updates BATCH] FILE`` — the CLI face.
"""

from .checks import (
    ALL_CHECKS,
    analyze_program,
    analyze_source,
    check_arities,
    check_clause,
    check_cross_products,
    check_duplicates,
    check_safety,
    check_singletons,
    check_stratification,
    check_subsumed,
    check_undefined,
    check_unused,
    source_pragmas,
)
from .diagnostics import CODES, CodeInfo, Diagnostic, Report, Severity
from .independence import IndependenceReport, independence_report
from .schedule import (
    ConflictArc,
    ConflictGraph,
    TransactionSummary,
    parse_transactions,
)
from .update_cones import (
    TOP,
    Pattern,
    PatternCone,
    UpdateConeAnalyzer,
    UpdateCones,
    update_cone_analyzer,
)

__all__ = [
    "ALL_CHECKS",
    "CODES",
    "CodeInfo",
    "ConflictArc",
    "ConflictGraph",
    "Diagnostic",
    "IndependenceReport",
    "Pattern",
    "PatternCone",
    "Report",
    "Severity",
    "TOP",
    "TransactionSummary",
    "UpdateConeAnalyzer",
    "UpdateCones",
    "analyze_program",
    "analyze_source",
    "check_arities",
    "check_clause",
    "check_cross_products",
    "check_duplicates",
    "check_safety",
    "check_singletons",
    "check_stratification",
    "check_subsumed",
    "check_undefined",
    "check_unused",
    "independence_report",
    "parse_transactions",
    "source_pragmas",
    "update_cone_analyzer",
]
