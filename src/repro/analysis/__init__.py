"""Static analysis of Datalog programs.

A linter and independence analyzer over the stratified substrate: where
the admission rules of :class:`~repro.datalog.database.StratifiedDatabase`
*reject* a bad update with an exception, this package *explains* a program
— every check emits structured :class:`Diagnostic` records with stable
``DLnnn`` codes, severities, source positions and fix hints, and the
non-stratifiability error comes with an explicit negative-cycle witness
path. The :class:`IndependenceReport` adds the revision-commutation view
of the dependency graph that the future concurrent revision service
shards by.

Entry points:

* :func:`analyze_program` — lint a :class:`~repro.datalog.clauses.Program`,
  clause list, or source text;
* :func:`analyze_source` — same, honouring ``% repro: allow DLnnn`` pragmas;
* :func:`independence_report` — pairwise update commutation and sharding;
* ``repro check [--json] [--workloads] FILE...`` — the CLI face.
"""

from .checks import (
    ALL_CHECKS,
    analyze_program,
    analyze_source,
    check_arities,
    check_clause,
    check_cross_products,
    check_duplicates,
    check_safety,
    check_singletons,
    check_stratification,
    check_subsumed,
    check_undefined,
    check_unused,
    source_pragmas,
)
from .diagnostics import CODES, CodeInfo, Diagnostic, Report, Severity
from .independence import IndependenceReport, independence_report

__all__ = [
    "ALL_CHECKS",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "IndependenceReport",
    "Report",
    "Severity",
    "analyze_program",
    "analyze_source",
    "check_arities",
    "check_clause",
    "check_cross_products",
    "check_duplicates",
    "check_safety",
    "check_singletons",
    "check_stratification",
    "check_subsumed",
    "check_undefined",
    "check_unused",
    "independence_report",
    "source_pragmas",
]
