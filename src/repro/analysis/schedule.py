"""Transaction commutation certificates: conflict graphs and batch schedules.

The admission question of ROADMAP item 1 — *which pending transactions may
be applied in any order, or concurrently?* — reduced to statics. A
**transaction** here is a named set of ground insertions and deletions; its
:class:`TransactionSummary` carries the union of the argument-level pattern
cones (:mod:`repro.analysis.update_cones`) of its updates. Two
transactions commute when neither one's write cone overlaps the other's
read cone — checked pattern-wise, so two transactions updating the *same*
relations under different keys still certify.

The :class:`ConflictGraph` over a batch records, per non-commuting pair,
:class:`ConflictArc` edges with a concrete witness in the DL002
negative-cycle style: the overlapping write/read pattern pair plus the
dependency-arc path along which the update's delta reaches the conflicting
relation. :meth:`ConflictGraph.commuting_batches` then greedily colors the
conflict graph, partitioning the batch into groups safe to apply in any
order or concurrently; the graph also feeds three diagnostics —

* **DL011** one warning per non-commuting pair (with witness),
* **DL012** hotspot relations read by *every* transaction (static
  contention: no split separates them),
* **DL013** negation-sensitive reordering hazards — an insertion whose
  cone crosses an odd number of negative arcs into another transaction's
  reads, the class where reordering changes which facts survive.

Certificates are only as trustworthy as their falsifier:
:mod:`repro.analysis.fuzz` replays certified-commuting pairs in both
orders on engine checkpoints and asserts identical models and support
states across every engine.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Sequence, Union

from ..datalog.atoms import Atom
from ..datalog.dependency import format_witness
from ..datalog.parser import parse_fact
from .diagnostics import Diagnostic, make
from .update_cones import (
    EMPTY_CONE,
    Pattern,
    PatternCone,
    UpdateConeAnalyzer,
    UpdateCones,
    _CanonConst,
)

#: A ground update: ("insert_fact" | "delete_fact", fact).
Update = tuple[str, Atom]

_OP_ALIASES = {
    "insert_fact": "insert_fact",
    "insert": "insert_fact",
    "+": "insert_fact",
    "delete_fact": "delete_fact",
    "delete": "delete_fact",
    "-": "delete_fact",
}


def _normalize_op(operation: str) -> str:
    try:
        return _OP_ALIASES[operation]
    except KeyError:
        raise ValueError(
            f"unknown update operation {operation!r} "
            f"(expected insert_fact/delete_fact)"
        ) from None


def _render_update(operation: str, fact: Atom) -> str:
    sign = "+" if operation == "insert_fact" else "-"
    return f"{sign}{fact}"


class TransactionSummary:
    """The read/write pattern cones of one named transaction."""

    __slots__ = ("name", "updates", "cones", "writes", "reads", "hazards")

    def __init__(
        self,
        name: str,
        updates: tuple[Update, ...],
        cones: tuple[UpdateCones, ...],
    ) -> None:
        self.name = name
        self.updates = updates
        self.cones = cones
        writes = EMPTY_CONE
        reads = EMPTY_CONE
        hazards = EMPTY_CONE  # insertions' negation-sensitive writes
        for (operation, _), cone in zip(updates, cones):
            writes = writes | cone.writes
            reads = reads | cone.reads
            if operation == "insert_fact":
                hazards = hazards | cone.negation_sensitive
        self.writes = writes
        self.reads = reads
        self.hazards = hazards

    @classmethod
    def from_updates(
        cls,
        analyzer: UpdateConeAnalyzer,
        name: str,
        updates: Iterable[tuple[str, Union[Atom, str]]],
    ) -> "TransactionSummary":
        normalized: list[Update] = []
        cones: list[UpdateCones] = []
        for operation, subject in updates:
            fact = (
                parse_fact(subject) if isinstance(subject, str) else subject
            )
            normalized.append((_normalize_op(operation), fact))
            cones.append(analyzer.cones(fact))
        return cls(name, tuple(normalized), tuple(cones))

    def render_updates(self) -> str:
        return " ".join(
            _render_update(operation, fact)
            for operation, fact in self.updates
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "updates": [
                _render_update(operation, fact)
                for operation, fact in self.updates
            ],
            "writes": self.writes.to_dict(),
            "reads": self.reads.to_dict(),
            "negation_sensitive": self.hazards.to_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"TransactionSummary({self.name}: {self.render_updates()})"
        )


class CommutationOracle:
    """Memoized pairwise commutation verdicts for batch scheduling.

    The full :class:`ConflictGraph` recomputes cone unions and overlap
    witnesses per batch — right for diagnostics, wasteful for the service
    hot path, where every round carries the same *shape* of transactions
    with fresh payload constants. Commutation is invariant under renaming
    constants the rule set never mentions (the closure and the overlap
    checks compare such constants only for equality), so the oracle keys
    each **pair** of transactions by a joint canonical form: rule
    constants stay literal, every other constant becomes a
    first-appearance placeholder shared across the pair — which preserves
    exactly the equality pattern within and *between* the two
    transactions. Isomorphic pairs share one cached verdict; steady
    keyed traffic schedules by dictionary lookup, falling back to the
    summary-level overlap check only on a miss.
    """

    def __init__(
        self, analyzer: UpdateConeAnalyzer, max_entries: int = 65536
    ) -> None:
        self.analyzer = analyzer
        self._fixed = analyzer.rule_constants
        self._verdicts: dict[tuple, bool] = {}
        self._max_entries = max_entries

    def _pair_key(
        self, first: tuple[Update, ...], second: tuple[Update, ...]
    ) -> tuple:
        mapping: dict = {}
        fixed = self._fixed

        def canon(updates: tuple[Update, ...]) -> tuple:
            rows = []
            for operation, fact in updates:
                args = []
                for arg in fact.args:
                    if arg in fixed:
                        args.append(arg)
                    else:
                        placeholder = mapping.get(arg)
                        if placeholder is None:
                            placeholder = _CanonConst(len(mapping))
                            mapping[arg] = placeholder
                        args.append(placeholder)
                rows.append((operation, fact.relation, tuple(args)))
            return tuple(rows)

        return canon(first), canon(second)

    def commuting_groups(
        self,
        batch: Sequence[tuple[str, tuple[Update, ...]]],
        preserve_order: bool = True,
    ) -> tuple[tuple[str, ...], ...]:
        """Partition *batch* like :meth:`ConflictGraph.commuting_batches`.

        Same greedy strategies over the same commutation relation — the
        verdicts just come from the pair cache when they can.
        """
        summaries: dict[str, TransactionSummary] = {}

        def summary(name: str, updates: tuple[Update, ...]):
            cached = summaries.get(name)
            if cached is None:
                cached = summaries[name] = TransactionSummary(
                    name, updates, tuple(map(self.analyzer.cones, (
                        fact for _, fact in updates
                    )))
                )
            return cached

        def commutes(
            a: tuple[str, tuple[Update, ...]],
            b: tuple[str, tuple[Update, ...]],
        ) -> bool:
            key = self._pair_key(a[1], b[1])
            verdict = self._verdicts.get(key)
            if verdict is None:
                first = summary(*a)
                second = summary(*b)
                verdict = (
                    first.writes.overlap_witness(second.reads) is None
                    and second.writes.overlap_witness(first.reads) is None
                )
                if len(self._verdicts) < self._max_entries:
                    self._verdicts[key] = verdict
            return verdict

        if preserve_order:
            level: dict[str, int] = {}
            leveled: list[list[str]] = []
            for position, transaction in enumerate(batch):
                slot = 0
                for earlier in batch[:position]:
                    if not commutes(transaction, earlier):
                        slot = max(slot, level[earlier[0]] + 1)
                level[transaction[0]] = slot
                if slot == len(leveled):
                    leveled.append([])
                leveled[slot].append(transaction[0])
            return tuple(tuple(group) for group in leveled)
        groups: list[list[str]] = []
        members: list[list[tuple[str, tuple[Update, ...]]]] = []
        for transaction in batch:
            for group, present in zip(groups, members):
                if all(commutes(transaction, other) for other in present):
                    group.append(transaction[0])
                    present.append(transaction)
                    break
            else:
                groups.append([transaction[0]])
                members.append([transaction])
        return tuple(tuple(group) for group in groups)


class ConflictArc:
    """One dependency-witnessed conflict between two transactions.

    *writer*'s update ``update`` transmits a delta to ``write_pattern``
    (along ``path``, a dependency-arc chain rendered in the DL002 witness
    style), which overlaps *reader*'s ``read_pattern``.
    """

    __slots__ = (
        "writer",
        "reader",
        "update",
        "write_pattern",
        "read_pattern",
        "kind",
        "path",
        "negation_sensitive",
    )

    def __init__(
        self,
        writer: str,
        reader: str,
        update: str,
        write_pattern: Pattern,
        read_pattern: Pattern,
        kind: str,
        path: str,
        negation_sensitive: bool,
    ) -> None:
        self.writer = writer
        self.reader = reader
        self.update = update
        self.write_pattern = write_pattern
        self.read_pattern = read_pattern
        self.kind = kind
        self.path = path
        self.negation_sensitive = negation_sensitive

    @property
    def relation(self) -> str:
        return self.write_pattern.relation

    def render(self) -> str:
        text = (
            f"{self.writer} writes {self.write_pattern.render()} "
            f"(from {self.update} via {self.path}), {self.reader} reads "
            f"{self.read_pattern.render()} [{self.kind}]"
        )
        if self.negation_sensitive:
            text += " [negation-sensitive]"
        return text

    def to_dict(self) -> dict:
        return {
            "writer": self.writer,
            "reader": self.reader,
            "update": self.update,
            "write_pattern": self.write_pattern.render(),
            "read_pattern": self.read_pattern.render(),
            "relation": self.relation,
            "kind": self.kind,
            "path": self.path,
            "negation_sensitive": self.negation_sensitive,
        }

    def __repr__(self) -> str:
        return f"ConflictArc({self.render()})"


class ConflictGraph:
    """The pairwise conflict structure of one transaction batch."""

    def __init__(
        self,
        analyzer: UpdateConeAnalyzer,
        transactions: Sequence[TransactionSummary],
    ) -> None:
        names = [transaction.name for transaction in transactions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate transaction names in {names}")
        self.analyzer = analyzer
        self.transactions = tuple(transactions)
        self._by_name = {
            transaction.name: transaction for transaction in transactions
        }
        self._edges: dict[tuple[str, str], tuple[ConflictArc, ...]] = {}
        for i, first in enumerate(self.transactions):
            for second in self.transactions[i + 1 :]:
                arcs = self._conflict_arcs(first, second)
                if arcs:
                    self._edges[(first.name, second.name)] = arcs

    @classmethod
    def of_batch(
        cls,
        analyzer: UpdateConeAnalyzer,
        batch: Iterable[
            tuple[str, Iterable[tuple[str, Union[Atom, str]]]]
        ],
    ) -> "ConflictGraph":
        return cls(
            analyzer,
            [
                TransactionSummary.from_updates(analyzer, name, updates)
                for name, updates in batch
            ],
        )

    # ------------------------------------------------------------------
    # Conflict detection
    # ------------------------------------------------------------------

    def _conflict_arcs(
        self, first: TransactionSummary, second: TransactionSummary
    ) -> tuple[ConflictArc, ...]:
        arcs: list[ConflictArc] = []
        seen: set[tuple[str, str, str, str]] = set()
        for writer, reader in ((first, second), (second, first)):
            for (operation, fact), cone in zip(
                writer.updates, writer.cones
            ):
                witness = cone.writes.overlap_witness(reader.reads)
                if witness is None:
                    continue
                write_pattern, read_pattern = witness
                key = (
                    writer.name,
                    reader.name,
                    write_pattern.render(),
                    read_pattern.render(),
                )
                if key in seen:
                    continue
                seen.add(key)
                arcs.append(
                    self._arc(
                        writer,
                        reader,
                        operation,
                        fact,
                        cone,
                        write_pattern,
                        read_pattern,
                    )
                )
        return tuple(arcs)

    def _arc(
        self,
        writer: TransactionSummary,
        reader: TransactionSummary,
        operation: str,
        fact: Atom,
        cone: UpdateCones,
        write_pattern: Pattern,
        read_pattern: Pattern,
    ) -> ConflictArc:
        graph = self.analyzer.relation_report.graph
        path_arcs = graph.arc_path(write_pattern.relation, fact.relation)
        path = (
            format_witness(path_arcs)
            if path_arcs
            else write_pattern.relation
        )
        write_write = any(
            write_pattern.overlaps(theirs)
            for theirs in reader.writes.patterns(write_pattern.relation)
        )
        hazard = operation == "insert_fact" and any(
            mine.overlaps(theirs)
            for mine in cone.negation_sensitive.patterns(
                write_pattern.relation
            )
            for theirs in reader.reads.patterns(write_pattern.relation)
        )
        return ConflictArc(
            writer.name,
            reader.name,
            _render_update(operation, fact),
            write_pattern,
            read_pattern,
            "write/write" if write_write else "write/read",
            path,
            hazard,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(
            transaction.name for transaction in self.transactions
        )

    def transaction(self, name: str) -> TransactionSummary:
        return self._by_name[name]

    def conflicts(self, a: str, b: str) -> tuple[ConflictArc, ...]:
        if a == b:
            return ()
        return self._edges.get((a, b)) or self._edges.get((b, a)) or ()

    def commutes(self, a: str, b: str) -> bool:
        return not self.conflicts(a, b)

    def edges(self) -> Iterator[tuple[str, str, tuple[ConflictArc, ...]]]:
        for (a, b), arcs in self._edges.items():
            yield a, b, arcs

    def commuting_batches(
        self, preserve_order: bool = False
    ) -> tuple[tuple[str, ...], ...]:
        """Partition the batch into groups safe to apply in any order.

        Greedy first-fit coloring in batch order: each transaction joins
        the first group it commutes with entirely, else opens a new
        group. Transactions inside one group pairwise commute, so a group
        may be applied in any order — or concurrently — without changing
        the final belief state; distinct groups must still be serialized
        against each other.

        First-fit may *reorder* conflicting transactions: a late
        transaction can slot into an earlier group than a conflicting
        predecessor, so executing groups in sequence realizes a serial
        order different from submission order. With ``preserve_order``
        every transaction lands strictly after its conflicting
        predecessors (longest-conflict-chain leveling), so group-by-group
        execution is equivalent to the submission-order serial replay —
        the contract the parallel executor journals under.
        """
        if preserve_order:
            level: dict[str, int] = {}
            leveled: list[list[str]] = []
            for position, transaction in enumerate(self.transactions):
                slot = 0
                for earlier in self.transactions[:position]:
                    if not self.commutes(transaction.name, earlier.name):
                        slot = max(slot, level[earlier.name] + 1)
                level[transaction.name] = slot
                if slot == len(leveled):
                    leveled.append([])
                leveled[slot].append(transaction.name)
            return tuple(tuple(group) for group in leveled)
        groups: list[list[str]] = []
        for transaction in self.transactions:
            for group in groups:
                if all(
                    self.commutes(transaction.name, member)
                    for member in group
                ):
                    group.append(transaction.name)
                    break
            else:
                groups.append([transaction.name])
        return tuple(tuple(group) for group in groups)

    def hotspots(self) -> tuple[str, ...]:
        """Relations where *every* pair of transactions meets.

        A relation is a hotspot when it appears in every transaction's
        read cone **and** the read patterns overlap for every pair — so
        whatever the batch split, any two transactions contend on it (no
        grouping separates them on that relation). A relation merely
        *named* by every cone under disjoint keys is not a hotspot: the
        keys keep the transactions apart. Sorted for stable output.
        """
        if len(self.transactions) < 2:
            return ()
        shared: set[str] | None = None
        for transaction in self.transactions:
            relations = set(transaction.reads.relations)
            shared = relations if shared is None else shared & relations
        hotspots = []
        for relation in sorted(shared or ()):
            if all(
                any(
                    mine.overlaps(theirs)
                    for mine in first.reads.patterns(relation)
                    for theirs in second.reads.patterns(relation)
                )
                for i, first in enumerate(self.transactions)
                for second in self.transactions[i + 1 :]
            ):
                hotspots.append(relation)
        return tuple(hotspots)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def diagnostics(self) -> list[Diagnostic]:
        """DL011/DL012/DL013 findings for this batch."""
        findings: list[Diagnostic] = []
        for a, b, arcs in self.edges():
            witness = arcs[0]
            findings.append(
                make(
                    "DL011",
                    f"transactions {a!r} and {b!r} do not commute: "
                    f"{witness.render()}",
                    hint=(
                        "serialize the pair, or re-key the updates so "
                        "their pattern cones separate"
                    ),
                )
            )
            for arc in arcs:
                if arc.negation_sensitive:
                    findings.append(
                        make(
                            "DL013",
                            f"insertion {arc.update} of {arc.writer!r} "
                            f"reaches {arc.write_pattern.render()} through "
                            f"an odd number of negations and "
                            f"{arc.reader!r} reads "
                            f"{arc.read_pattern.render()}: reordering can "
                            f"change which facts survive",
                            hint=(
                                "apply the inserting transaction last, "
                                "or serialize the pair explicitly"
                            ),
                        )
                    )
        for relation in self.hotspots():
            findings.append(
                make(
                    "DL012",
                    f"relation {relation!r} is in every transaction's "
                    f"read cone ({len(self.transactions)} transactions): "
                    f"static contention point",
                    hint=(
                        "shard the relation by key, or move it out of "
                        "the shared rule chain"
                    ),
                )
            )
        return findings

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "transactions": [
                transaction.to_dict()
                for transaction in self.transactions
            ],
            "conflicts": [
                {
                    "pair": [a, b],
                    "arcs": [arc.to_dict() for arc in arcs],
                }
                for a, b, arcs in self.edges()
            ],
            "commuting_batches": [
                list(group) for group in self.commuting_batches()
            ],
            "hotspots": list(self.hotspots()),
        }

    def summary(self) -> str:
        total = len(self.transactions)
        pairs = total * (total - 1) // 2
        batches = self.commuting_batches()
        lines = [
            f"{total} transaction(s), {pairs - len(self._edges)}/{pairs} "
            f"pairs commute, {len(batches)} commuting batch(es)"
        ]
        for i, group in enumerate(batches, start=1):
            lines.append(f"  batch {i}: {', '.join(group)}")
        for a, b, arcs in self.edges():
            lines.append(f"  conflict {a} ~ {b}: {arcs[0].render()}")
        hotspots = self.hotspots()
        if hotspots:
            lines.append(f"  hotspots: {', '.join(hotspots)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ConflictGraph({len(self.transactions)} transactions, "
            f"{len(self._edges)} conflicting pairs)"
        )


# ----------------------------------------------------------------------
# Batch text format
# ----------------------------------------------------------------------

_NAME_PREFIX = re.compile(r"^\s*([A-Za-z_]\w*)\s*:\s*")
_UPDATE = re.compile(
    r"([+-]?)\s*([A-Za-z_]\w*(?:\([^()]*\))?)\s*\.?"
)


def parse_transactions(
    text: str,
) -> list[tuple[str, list[tuple[str, Atom]]]]:
    """Parse a transaction batch from text, one transaction per line.

    Format: ``name: +fact(a, b). -other(c).`` — ``+`` inserts (and is the
    default when the sign is omitted), ``-`` deletes. The ``name:`` prefix
    is optional; unnamed transactions are numbered ``t1, t2, ...`` in
    order. Blank lines and ``%``/``#`` comment lines are skipped.
    """
    batch: list[tuple[str, list[tuple[str, Atom]]]] = []
    counter = 0
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("%", "#")):
            continue
        prefixed = _NAME_PREFIX.match(line)
        if prefixed:
            name = prefixed.group(1)
            line = line[prefixed.end() :]
        else:
            counter += 1
            name = f"t{counter}"
        updates: list[tuple[str, Atom]] = []
        for sign, rendered in _UPDATE.findall(line):
            operation = "delete_fact" if sign == "-" else "insert_fact"
            updates.append((operation, parse_fact(rendered)))
        if not updates:
            raise ValueError(f"transaction {name!r} has no updates: {raw!r}")
        batch.append((name, updates))
    return batch
