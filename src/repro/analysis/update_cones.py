"""Argument-level update cones: pattern refinement of the independence view.

:class:`~repro.analysis.independence.IndependenceReport` prices a revision
at *relation* granularity: an update to ``deposit`` conflicts with every
other update whose cone shares a relation, even when the two updates touch
provably disjoint facts (its own docstring concedes as much). On a
single-shard program — one weakly-connected component, the common case —
relation granularity certifies nothing.

This module refines the same section-4.1 closures to **binding patterns**.
A ground update ``Δr(c₁, …, cₖ)`` is abstracted as the pattern
``r(c₁, …, cₖ)`` and propagated through clause bodies adornment-style:

* matching the pattern against a body occurrence of ``r`` binds the
  clause's variables to the pattern's constants (a constant clash with a
  constant in the literal, or with a repeated variable, *prunes* the
  clause — it cannot transmit this delta);
* a head position keeps a constant when the join chain carries it (the
  head variable is bound by the matched occurrence, or the head position
  is itself a constant); joins that drop the binding widen the position
  to ``TOP``;
* the closure of this step is the **pattern write cone** — every fact
  whose truth can change matches some pattern of the cone — and the
  downward closure (head pattern into the defining bodies) is the
  **pattern read cone** — every fact maintenance may consult matches some
  read pattern.

Widening keeps the analysis bounded: per relation, at most
``max_patterns`` incomparable patterns are tracked; one more collapses
the relation to its all-``TOP`` pattern, which is *exactly* the
relation-level cone for that relation. The refinement is therefore never
less precise than :class:`IndependenceReport` — structurally, every
pattern's relation lies inside the corresponding relation-level cone
(the propagation follows the same dependency arcs), and
:meth:`UpdateConeAnalyzer.commutes` short-circuits through the
relation-level answer first.

Two updates to the **same** relation with different keys can now still
provably commute: on a by-key-sharded program the key constant survives
every join of the chain, so the two updates' cones carry distinct
constants in the key position and no pattern pair overlaps.

Parity rides along exactly as in the paper's ``Pos``/``Neg`` closures:
each write pattern remembers whether it was reached through an odd number
of negative arcs. Those odd-parity patterns are the *negation-sensitive*
part of the cone — the facts an **insertion** can retract — which is what
the DL013 reordering-hazard diagnostic of :mod:`repro.analysis.schedule`
prices.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping, Union

from ..datalog.atoms import Atom, Literal
from ..datalog.clauses import Clause, Program
from ..datalog.parser import parse_clauses
from ..datalog.terms import Term, Variable, format_term
from .independence import IndependenceReport


class _Top:
    """The unconstrained argument position (rendered ``*``)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "*"


#: The single ``⊤`` marker; identity-compared everywhere.
TOP = _Top()


class Pattern:
    """An abstracted fact: a relation plus constant-or-``TOP`` positions.

    A ground fact matches the pattern when every constant position agrees;
    ``TOP`` positions match anything. Patterns are immutable, hashable and
    ordered deterministically by their rendering.
    """

    __slots__ = ("relation", "args", "_hash")

    def __init__(self, relation: str, args: tuple[Term, ...]) -> None:
        self.relation = relation
        self.args = args
        self._hash = hash(
            (relation, tuple("*" if a is TOP else (0, a) for a in args))
        )

    @classmethod
    def of_fact(cls, fact: Atom) -> "Pattern":
        """The exact pattern of a ground fact (no ``TOP`` positions)."""
        if not fact.is_ground():
            raise ValueError(f"update {fact} is not ground")
        return cls(fact.relation, fact.args)

    @classmethod
    def top(cls, relation: str, arity: int) -> "Pattern":
        """The all-``TOP`` pattern: the relation-level cone member."""
        return cls(relation, (TOP,) * arity)

    @property
    def is_top(self) -> bool:
        return all(arg is TOP for arg in self.args)

    def subsumes(self, other: "Pattern") -> bool:
        """True when every fact matching *other* matches *self*."""
        if self.relation != other.relation or len(self.args) != len(other.args):
            return False
        return all(
            mine is TOP or (theirs is not TOP and mine == theirs)
            for mine, theirs in zip(self.args, other.args)
        )

    def overlaps(self, other: "Pattern") -> bool:
        """True when some ground fact matches both patterns.

        Patterns of the same relation with differing arities (an arity
        drift the DL003 check reports separately) are conservatively
        treated as overlapping.
        """
        if self.relation != other.relation:
            return False
        if len(self.args) != len(other.args):
            return True
        return all(
            mine is TOP or theirs is TOP or mine == theirs
            for mine, theirs in zip(self.args, other.args)
        )

    def matches(self, fact: Atom) -> bool:
        """True when the ground *fact* is an instance of the pattern."""
        if fact.relation != self.relation or fact.arity != len(self.args):
            return False
        return all(
            mine is TOP or mine == theirs
            for mine, theirs in zip(self.args, fact.args)
        )

    def render(self) -> str:
        if not self.args:
            return self.relation
        inner = ", ".join(
            "*" if arg is TOP else format_term(arg) for arg in self.args
        )
        return f"{self.relation}({inner})"

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"Pattern({self.render()!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Pattern)
            and other._hash == self._hash
            and other.relation == self.relation
            and len(other.args) == len(self.args)
            and all(
                (a is TOP) == (b is TOP) and (a is TOP or a == b)
                for a, b in zip(self.args, other.args)
            )
        )

    def __hash__(self) -> int:
        return self._hash


def _sorted_patterns(patterns: Iterable[Pattern]) -> tuple[Pattern, ...]:
    return tuple(sorted(patterns, key=Pattern.render))


class PatternCone(Mapping[str, tuple[Pattern, ...]]):
    """An immutable relation → pattern-antichain mapping.

    Per relation the patterns are pairwise incomparable (no pattern
    subsumes another) and sorted by rendering, so equal cones render and
    serialize identically.
    """

    __slots__ = ("_patterns",)

    def __init__(self, patterns: Mapping[str, Iterable[Pattern]]) -> None:
        self._patterns: dict[str, tuple[Pattern, ...]] = {
            relation: _sorted_patterns(members)
            for relation, members in sorted(patterns.items())
            if members
        }

    # Mapping protocol --------------------------------------------------

    def __getitem__(self, relation: str) -> tuple[Pattern, ...]:
        return self._patterns[relation]

    def __iter__(self) -> Iterator[str]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(self._patterns)

    def patterns(self, relation: str) -> tuple[Pattern, ...]:
        return self._patterns.get(relation, ())

    # Set algebra -------------------------------------------------------

    def overlaps(self, other: "PatternCone") -> bool:
        return self.overlap_witness(other) is not None

    def overlap_witness(
        self, other: "PatternCone"
    ) -> tuple[Pattern, Pattern] | None:
        """The first (deterministic) overlapping pattern pair, or None."""
        for relation in sorted(self.relations & other.relations):
            for mine in self._patterns[relation]:
                for theirs in other.patterns(relation):
                    if mine.overlaps(theirs):
                        return (mine, theirs)
        return None

    def union(self, other: "PatternCone") -> "PatternCone":
        merged: dict[str, set[Pattern]] = {
            relation: set(members)
            for relation, members in self._patterns.items()
        }
        for relation, members in other.items():
            bucket = merged.setdefault(relation, set())
            for pattern in members:
                if any(kept.subsumes(pattern) for kept in bucket):
                    continue
                bucket.difference_update(
                    {kept for kept in bucket if pattern.subsumes(kept)}
                )
                bucket.add(pattern)
        return PatternCone(merged)

    def __or__(self, other: "PatternCone") -> "PatternCone":
        return self.union(other)

    # Rendering ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            relation: [pattern.render() for pattern in members]
            for relation, members in self._patterns.items()
        }

    def render(self) -> str:
        if not self._patterns:
            return "(empty cone)"
        return ", ".join(
            pattern.render()
            for members in self._patterns.values()
            for pattern in members
        )

    def __repr__(self) -> str:
        return f"PatternCone({self.render()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PatternCone)
            and other._patterns == self._patterns
        )

    def __hash__(self) -> int:
        return hash(
            tuple(
                (relation, members)
                for relation, members in self._patterns.items()
            )
        )


EMPTY_CONE = PatternCone({})


class _CanonConst:
    """A placeholder constant for cone canonicalization.

    Update constants that appear nowhere in the program's rules are
    interchangeable for the closure: the propagation only ever compares
    constants for equality, so renaming them (injectively, avoiding every
    rule constant) yields an isomorphic cone. Canonicalizing an update to
    placeholders lets one closure serve every update of the same shape —
    the dominant cost of scheduling keyed traffic, where each transaction
    carries fresh payload values over a fixed pattern.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _CanonConst) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("_CanonConst", self.index))

    def __repr__(self) -> str:
        return f"?{self.index}"


GraphLike = Union[Program, str, Iterable[Clause]]

#: (clause, literal) — one body occurrence of a relation.
_Occurrence = tuple[Clause, Literal]


class UpdateCones:
    """The three pattern cones of one ground update."""

    __slots__ = ("update", "writes", "reads", "negation_sensitive")

    def __init__(
        self,
        update: Atom,
        writes: PatternCone,
        reads: PatternCone,
        negation_sensitive: PatternCone,
    ) -> None:
        self.update = update
        self.writes = writes
        self.reads = reads
        self.negation_sensitive = negation_sensitive

    def to_dict(self) -> dict:
        return {
            "update": str(self.update),
            "writes": self.writes.to_dict(),
            "reads": self.reads.to_dict(),
            "negation_sensitive": self.negation_sensitive.to_dict(),
        }

    def __repr__(self) -> str:
        return f"UpdateCones({self.update}, writes={self.writes.render()})"


def _rename_cone(cone: PatternCone, inverse: dict) -> PatternCone:
    return PatternCone(
        {
            relation: [
                Pattern(
                    pattern.relation,
                    tuple(
                        arg if arg is TOP else inverse.get(arg, arg)
                        for arg in pattern.args
                    ),
                )
                for pattern in members
            ]
            for relation, members in cone.items()
        }
    )


def _rename_cones(
    cones: "UpdateCones", fact: Atom, inverse: dict
) -> "UpdateCones":
    """Instantiate a canonical closure for one concrete update."""
    return UpdateCones(
        fact,
        _rename_cone(cones.writes, inverse),
        _rename_cone(cones.reads, inverse),
        _rename_cone(cones.negation_sensitive, inverse),
    )


class UpdateConeAnalyzer:
    """Pattern-cone computation and pairwise commutation over one program.

    The analyzer caches per-seed-pattern closures, so repeated updates to
    the same fact (the common batch shape) are analyzed once. The
    relation-level :class:`IndependenceReport` rides along both as the
    commutation short-circuit and as the documented precision floor.
    """

    def __init__(self, source: GraphLike, *, max_patterns: int = 8) -> None:
        if isinstance(source, str):
            clauses: tuple[Clause, ...] = tuple(parse_clauses(source))
        else:
            clauses = tuple(source)
        self.clauses = clauses
        self.max_patterns = max_patterns
        self.relation_report = IndependenceReport(clauses)
        # Body occurrences by relation (for upward/write propagation) and
        # rule definitions by head relation (for downward/read propagation).
        self._occurrences: dict[str, list[_Occurrence]] = {}
        self._definitions: dict[str, list[Clause]] = {}
        self._rule_constants: set = set()
        for clause in clauses:
            if not clause.body:
                continue
            self._definitions.setdefault(clause.head.relation, []).append(
                clause
            )
            for atom in (clause.head, *clause.body):
                for arg in atom.args:
                    if not isinstance(arg, Variable):
                        self._rule_constants.add(arg)
            for literal in clause.body:
                self._occurrences.setdefault(literal.relation, []).append(
                    (clause, literal)
                )
        self._cache: dict[Pattern, UpdateCones] = {}
        self._canon_cache: dict[Pattern, UpdateCones] = {}

    # ------------------------------------------------------------------
    # Cones
    # ------------------------------------------------------------------

    @property
    def rule_constants(self) -> frozenset:
        """Constants the rule set mentions anywhere (head or body).

        Every other constant is interchangeable for the closure — the
        renaming-invariance the canonical cone cache and the scheduling
        oracle both rest on.
        """
        return frozenset(self._rule_constants)

    def cones(self, update: Union[Atom, str]) -> UpdateCones:
        """The write/read/negation-sensitive cones of a ground update.

        Memoized twice over: exactly per seed pattern, and — for the
        constants the program's rules never mention — modulo renaming, so
        a stream of same-shaped updates with fresh payload values (keyed
        transaction traffic) computes its closure once.
        """
        fact = self._as_fact(update)
        seed = Pattern.of_fact(fact)
        cached = self._cache.get(seed)
        if cached is None:
            canon, inverse = self._canonicalize(fact)
            if inverse is None:
                cached = self._closure(fact, seed)
            else:
                canon_seed = Pattern.of_fact(canon)
                canon_cones = self._canon_cache.get(canon_seed)
                if canon_cones is None:
                    canon_cones = self._closure(canon, canon_seed)
                    self._canon_cache[canon_seed] = canon_cones
                cached = _rename_cones(canon_cones, fact, inverse)
            if len(self._cache) < 8192:
                self._cache[seed] = cached
        return cached

    def _canonicalize(self, fact: Atom) -> tuple[Atom, dict | None]:
        """(canonical fact, placeholder → original) — or (fact, None).

        Constants the rules mention stay themselves (their identity can
        steer the closure); every other constant becomes a placeholder,
        one per distinct value so repeated-argument equalities survive.
        """
        mapping: dict = {}
        args = []
        for arg in fact.args:
            if arg in self._rule_constants:
                args.append(arg)
                continue
            placeholder = mapping.get(arg)
            if placeholder is None:
                placeholder = _CanonConst(len(mapping))
                mapping[arg] = placeholder
            args.append(placeholder)
        if not mapping:
            return fact, None
        inverse = {
            placeholder: original
            for original, placeholder in mapping.items()
        }
        return Atom(fact.relation, tuple(args)), inverse

    def write_cone(self, update: Union[Atom, str]) -> PatternCone:
        return self.cones(update).writes

    def read_cone(self, update: Union[Atom, str]) -> PatternCone:
        return self.cones(update).reads

    def negation_sensitive_cone(self, update: Union[Atom, str]) -> PatternCone:
        return self.cones(update).negation_sensitive

    # ------------------------------------------------------------------
    # Pairwise commutation
    # ------------------------------------------------------------------

    def commutes(self, a: Union[Atom, str], b: Union[Atom, str]) -> bool:
        """True when the two ground updates provably commute.

        Relation-level commutation is checked first (the cheap,
        already-proved case — this is what makes the refinement *never*
        coarser than :class:`IndependenceReport`); otherwise neither
        update's pattern write cone may overlap the other's pattern read
        cone.
        """
        fact_a, fact_b = self._as_fact(a), self._as_fact(b)
        if self.relation_report.commutes(fact_a.relation, fact_b.relation):
            return True
        cones_a, cones_b = self.cones(fact_a), self.cones(fact_b)
        return not (
            cones_a.writes.overlaps(cones_b.reads)
            or cones_b.writes.overlaps(cones_a.reads)
        )

    def conflict_witness(
        self, a: Union[Atom, str], b: Union[Atom, str]
    ) -> tuple[Pattern, Pattern] | None:
        """The overlapping (write, read) pattern pair, or None.

        The first element is a write pattern of *a* overlapping a read
        pattern of *b*; when only the symmetric direction conflicts, the
        first element is a write pattern of *b* instead.
        """
        cones_a, cones_b = self.cones(a), self.cones(b)
        witness = cones_a.writes.overlap_witness(cones_b.reads)
        if witness is None:
            witness = cones_b.writes.overlap_witness(cones_a.reads)
        return witness

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _as_fact(update: Union[Atom, str]) -> Atom:
        if isinstance(update, str):
            from ..datalog.parser import parse_fact

            return parse_fact(update)
        return update

    def _closure(self, fact: Atom, seed: Pattern) -> UpdateCones:
        # Write cone: upward closure over (pattern, parity) states.
        writes: dict[str, set[Pattern]] = {seed.relation: {seed}}
        odd_writes: dict[str, set[Pattern]] = {}
        seen: set[tuple[Pattern, bool]] = {(seed, False)}
        queue: deque[tuple[Pattern, bool]] = deque([(seed, False)])
        while queue:
            pattern, odd = queue.popleft()
            for clause, literal in self._occurrences.get(
                pattern.relation, ()
            ):
                head = self._propagate_up(pattern, clause, literal)
                if head is None:
                    continue
                parity = odd != (not literal.positive)
                for added in self._admit(writes, head):
                    state = (added, parity)
                    if state not in seen:
                        seen.add(state)
                        queue.append(state)
                if parity:
                    self._admit(odd_writes, head)
        # Read cone: downward closure from every write pattern. Reads
        # contain writes, mirroring IndependenceReport.reads ⊇ writes.
        reads: dict[str, set[Pattern]] = {
            relation: set(members) for relation, members in writes.items()
        }
        down: deque[Pattern] = deque(
            pattern for members in writes.values() for pattern in members
        )
        seen_down: set[Pattern] = set(down)
        while down:
            pattern = down.popleft()
            for clause in self._definitions.get(pattern.relation, ()):
                for body_pattern in self._propagate_down(pattern, clause):
                    for added in self._admit(reads, body_pattern):
                        if added not in seen_down:
                            seen_down.add(added)
                            down.append(added)
        return UpdateCones(
            fact,
            PatternCone(writes),
            PatternCone(reads),
            PatternCone(odd_writes),
        )

    def _admit(
        self, cone: dict[str, set[Pattern]], pattern: Pattern
    ) -> list[Pattern]:
        """Insert *pattern* into the antichain; returns patterns to queue.

        A pattern subsumed by an existing one adds nothing (the subsumer
        propagates strictly more, so its closure covers the newcomer's).
        Admitting one pattern beyond ``max_patterns`` widens the relation
        to its all-``TOP`` pattern — the relation-level fallback.
        """
        bucket = cone.setdefault(pattern.relation, set())
        if any(kept.subsumes(pattern) for kept in bucket):
            return []
        bucket.difference_update(
            {kept for kept in bucket if pattern.subsumes(kept)}
        )
        bucket.add(pattern)
        if len(bucket) > self.max_patterns:
            top = Pattern.top(pattern.relation, len(pattern.args))
            bucket.clear()
            bucket.add(top)
            return [top]
        return [pattern]

    @staticmethod
    def _propagate_up(
        pattern: Pattern, clause: Clause, literal: Literal
    ) -> Pattern | None:
        """The head pattern transmitted through one body occurrence.

        Binds the clause's variables against the pattern's constants at
        the matched occurrence; ``None`` means the occurrence provably
        cannot transmit the delta (constant clash, or one variable bound
        to two distinct constants).
        """
        if len(literal.args) != len(pattern.args):
            # Arity drift (DL003): conservatively treat the occurrence as
            # fully unconstrained rather than guessing a column mapping.
            binding: dict[Variable, Term] = {}
        else:
            binding = {}
            for term, abstract in zip(literal.args, pattern.args):
                if abstract is TOP:
                    continue
                if isinstance(term, Variable):
                    known = binding.get(term)
                    if known is None:
                        binding[term] = abstract
                    elif known != abstract:
                        return None
                elif term != abstract:
                    return None
        head = clause.head
        args = tuple(
            binding.get(term, TOP) if isinstance(term, Variable) else term
            for term in head.args
        )
        return Pattern(head.relation, args)

    @staticmethod
    def _propagate_down(
        pattern: Pattern, clause: Clause
    ) -> Iterator[Pattern]:
        """The body patterns consulted when re-deriving *pattern*.

        Binds head variables against the pattern's constants and pushes
        the bindings into every body literal; a constant clash in the
        head means this clause derives no fact matching the pattern, so
        it contributes no reads.
        """
        head = clause.head
        if len(head.args) != len(pattern.args):
            binding: dict[Variable, Term] = {}
        else:
            binding = {}
            for term, abstract in zip(head.args, pattern.args):
                if abstract is TOP:
                    continue
                if isinstance(term, Variable):
                    known = binding.get(term)
                    if known is None:
                        binding[term] = abstract
                    elif known != abstract:
                        return
                elif term != abstract:
                    return
        for literal in clause.body:
            yield Pattern(
                literal.relation,
                tuple(
                    binding.get(term, TOP)
                    if isinstance(term, Variable)
                    else term
                    for term in literal.args
                ),
            )

    def __repr__(self) -> str:
        return (
            f"UpdateConeAnalyzer({len(self.clauses)} clauses, "
            f"max_patterns={self.max_patterns})"
        )


def update_cone_analyzer(
    source: GraphLike, *, max_patterns: int = 8
) -> UpdateConeAnalyzer:
    """Convenience constructor mirroring :func:`~.checks.analyze_program`."""
    return UpdateConeAnalyzer(source, max_patterns=max_patterns)
