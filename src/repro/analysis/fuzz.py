"""Differential commutation fuzzer: the certifier's falsifier.

The pattern-cone certificates of :mod:`repro.analysis.update_cones` and
:mod:`repro.analysis.schedule` are only trustworthy because this harness
cannot falsify them: for random stratified programs (and the keyed ledger
workload) it draws update pairs, asks the analyzer which pairs commute,
and **replays every certified pair in both orders** on engine
checkpoints — asserting the final model *and* support state are
identical, across every registered engine. A certified pair whose two
orders disagree anywhere is an unsound certificate, reported with the
program seed and the offending pair.

The *deduction-log* support forms get a weaker-but-still-checked
treatment: the rule-pointer records of section 5.1 (``cascade`` /
``cascade-paper``) and the set-of-sets elements of section 4.3
(``setofsets`` / ``setofsets-paired``) accumulate one entry per
deduction that fired, and the sweeps that prune them test body relation
**names** — so an update under one key can evict (and saturation not
re-add, or re-add extra) entries on a *different* key of the same
relation. Those states are genuinely history-dependent even when the
models commute; demanding bitwise equality would reject certificates
that are sound for everything the supports exist to serve. Instead:

* rule-record tables are checked to be a *valid support cover* of each
  order's final state — every model fact carries at least one record, no
  evicted fact keeps one, every assertion record points at a
  currently-asserted fact, and every rule pointer re-fires against the
  final model;
* every engine, after every order, takes an **undo probe**: the pair's
  inverse updates are applied and the model must land exactly back on
  the base model — a divergent-but-healthy support state passes, a
  rotten one (wrongly retained or evicted facts waiting to happen) is a
  violation.

Support forms that are functions of the current state (the signed and
unsigned single supports of section 4.2, fact-level records) are still
compared strictly between the two orders.

Both pool entries are valid against the base state independently and
address distinct facts, so each order is a legal revision sequence; the
replay runs on ``engine.checkpoint()``/``restore()`` (copy-on-write since
the arena PR), so a fuzz round costs little more than the revisions
themselves.

Run as a module for the CI smoke job::

    python -m repro.analysis.fuzz --seeds 4 --pairs 30

exits non-zero if any certified pair fails the differential replay.
"""

from __future__ import annotations

import argparse
import random
from typing import Sequence

from ..core.base import MaintenanceEngine
from ..core.registry import ENGINE_NAMES, create_engine
from ..core.supports import RuleRecord
from ..datalog.atoms import Atom
from ..datalog.clauses import Clause, Program
from ..datalog.evaluation import iter_derivations
from .update_cones import UpdateConeAnalyzer

#: A ground update as the engines consume it.
Update = tuple[str, Atom]


class FuzzViolation:
    """One unsound certificate: a certified pair with divergent orders."""

    __slots__ = ("label", "engine", "first", "second", "detail")

    def __init__(
        self,
        label: str,
        engine: str,
        first: Sequence[Update],
        second: Sequence[Update],
        detail: str,
    ) -> None:
        self.label = label
        self.engine = engine
        self.first = tuple(first)
        self.second = tuple(second)
        self.detail = detail

    def render(self) -> str:
        def updates(seq: Sequence[Update]) -> str:
            return " ".join(
                ("+" if op == "insert_fact" else "-") + str(fact)
                for op, fact in seq
            )

        return (
            f"{self.label} [{self.engine}]: certified-commuting pair "
            f"({updates(self.first)}) / ({updates(self.second)}) "
            f"diverges: {self.detail}"
        )

    def __repr__(self) -> str:
        return f"FuzzViolation({self.render()})"


class FuzzReport:
    """Tally of one fuzz run."""

    def __init__(self) -> None:
        self.programs = 0
        self.pairs_drawn = 0
        self.certified_relation = 0
        self.certified_pattern_only = 0
        self.replays = 0
        self.record_validations = 0
        self.parallel_batches = 0
        self.parallel_groups = 0
        self.violations: list[FuzzViolation] = []

    @property
    def certified(self) -> int:
        return self.certified_relation + self.certified_pattern_only

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"{self.programs} program(s), {self.pairs_drawn} pair(s) "
            f"drawn, {self.certified} certified "
            f"({self.certified_relation} relation-level, "
            f"{self.certified_pattern_only} pattern-only), "
            f"{self.replays} differential replay(s), "
            f"{self.record_validations} record validation(s), "
            f"{len(self.violations)} violation(s)"
        ]
        if self.parallel_batches:
            lines.append(
                f"threaded: {self.parallel_batches} batch(es) executed "
                f"in parallel, {self.parallel_groups} commuting group(s) "
                "merged"
            )
        lines.extend(v.render() for v in self.violations)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"FuzzReport({self.summary().splitlines()[0]})"


def _edb_facts(program: Program, edb_relations: Sequence[str]) -> list[Atom]:
    wanted = set(edb_relations)
    return [
        clause.head
        for clause in program
        if not clause.body and clause.head.relation in wanted
    ]


def _update_pool(
    program: Program,
    edb_relations: Sequence[str],
    arities: dict[str, int],
    domain: Sequence[object],
    rng: random.Random,
    size: int,
) -> list[Update]:
    """Updates each valid against the base state, with distinct subjects.

    Deletions target asserted EDB facts; insertions target fresh rows.
    Because validity is judged against the *base* state and no two pool
    entries share a subject atom, any two entries can be applied in
    either order.
    """
    asserted = _edb_facts(program, edb_relations)
    present = set(asserted)
    pool: list[Update] = []
    subjects: set[Atom] = set()
    for fact in rng.sample(asserted, min(size // 2, len(asserted))):
        pool.append(("delete_fact", fact))
        subjects.add(fact)
    values = list(domain) or [0, 1]
    relations = [name for name in edb_relations if name in arities]
    attempts = 0
    while len(pool) < size and relations and attempts < size * 20:
        attempts += 1
        name = rng.choice(relations)
        row = tuple(
            rng.choice(values) for _ in range(arities[name])
        )
        fresh = Atom(name, row)
        if fresh in present or fresh in subjects:
            continue
        pool.append(("insert_fact", fresh))
        subjects.add(fresh)
    return pool


def _signature(
    engine: MaintenanceEngine,
) -> tuple[object, dict[str, object], dict[str, dict[Atom, set[RuleRecord]]]]:
    """(model, canonical supports, rule-record tables) of the live state.

    The deduction-log support forms are split out of the strict
    comparison (see the module docstring): rule-pointer tables
    (``kind == "rule"``) are returned decoded for the validity check,
    and set-of-sets element tables (``kind`` in ``sos``/``paired``) are
    dropped — their health is probed behaviorally by the undo probe.
    """
    state = engine.state_dict()
    canonical: dict[str, object] = {}
    records: dict[str, dict[Atom, set[RuleRecord]]] = {}
    for key, value in state["supports"].items():
        kind = getattr(value, "kind", None)
        if kind == "rule":
            records[key] = value.to_record_state()
        elif kind not in ("sos", "paired"):
            canonical[key] = value
    return state["model"], canonical, records


def _validate_rule_records(
    engine: MaintenanceEngine,
    tables: dict[str, dict[Atom, set[RuleRecord]]],
    asserted: set[Atom],
) -> str | None:
    """Check a live rule-record state is a valid support cover.

    Every model fact must carry at least one record, no non-model fact may
    keep one, assertion records must point at currently-asserted facts,
    and every rule pointer must re-fire against the final model. Returns
    a description of the first defect, or None when the state is valid.
    """
    model = engine.model
    model_facts = set(model)
    firing: dict[Clause, set[Atom]] = {}
    for key, table in tables.items():
        recorded = {fact for fact, records in table.items() if records}
        for fact in model_facts - recorded:
            return f"{key}: model fact {fact} has no support record"
        for fact in recorded - model_facts:
            return f"{key}: evicted fact {fact} still has records"
        for fact, records in table.items():
            for record in records:
                if record.rule is None:
                    if fact not in asserted:
                        return (
                            f"{key}: {fact} carries an assertion record "
                            "but is not asserted"
                        )
                    continue
                heads = firing.get(record.rule)
                if heads is None:
                    heads = {
                        derivation.head
                        for derivation in iter_derivations(
                            record.rule, model
                        )
                    }
                    firing[record.rule] = heads
                if fact not in heads:
                    return (
                        f"{key}: record '{record}' on {fact} does not "
                        "fire against the final model"
                    )
    return None


def _replay_both_orders(
    label: str,
    program: Program,
    engines: dict[str, MaintenanceEngine],
    first: Sequence[Update],
    second: Sequence[Update],
    report: FuzzReport,
) -> None:
    asserted = {clause.head for clause in program if not clause.body}
    for operation, fact in list(first) + list(second):
        if operation == "insert_fact":
            asserted.add(fact)
        else:
            asserted.discard(fact)

    def inverse(updates: Sequence[Update]) -> list[Update]:
        flip = {"insert_fact": "delete_fact", "delete_fact": "insert_fact"}
        return [
            (flip[operation], fact)
            for operation, fact in reversed(list(updates))
        ]

    for name, engine in engines.items():
        defects: list[str] = []
        base = engine.checkpoint()
        base_model = engine.state_dict()["model"]

        def replay(
            updates: Sequence[Update], order: str
        ) -> tuple[object, dict[str, object], dict]:
            for operation, fact in updates:
                engine.apply(operation, fact)
            signature = _signature(engine)
            if signature[2]:
                report.record_validations += 1
                defect = _validate_rule_records(
                    engine, signature[2], asserted
                )
                if defect is not None:
                    defects.append(f"after {order} order, {defect}")
            # undo probe: the inverses must land exactly back on the
            # base model, whatever the support state looks like.
            for operation, fact in inverse(updates):
                engine.apply(operation, fact)
            if engine.state_dict()["model"] != base_model:
                defects.append(
                    f"undoing the {order} order does not restore the "
                    "base model"
                )
            return signature

        try:
            forward = replay(list(first) + list(second), "first")
            engine.restore(base)
            backward = replay(list(second) + list(first), "second")
        finally:
            engine.restore(base)
        report.replays += 1
        if forward[0] != backward[0]:
            report.violations.append(
                FuzzViolation(
                    label, name, first, second, "final models differ"
                )
            )
        elif forward[1] != backward[1]:
            report.violations.append(
                FuzzViolation(
                    label, name, first, second, "support states differ"
                )
            )
        else:
            report.violations.extend(
                FuzzViolation(label, name, first, second, defect)
                for defect in defects
            )


def _fuzz_program(
    label: str,
    program: Program,
    edb_relations: Sequence[str],
    arities: dict[str, int],
    domain: Sequence[object],
    *,
    pairs: int,
    engine_names: Sequence[str],
    rng: random.Random,
    report: FuzzReport,
) -> None:
    analyzer = UpdateConeAnalyzer(program)
    pool = _update_pool(
        program, edb_relations, arities, domain, rng, max(4, pairs // 2)
    )
    if len(pool) < 2:
        return
    report.programs += 1
    engines: dict[str, MaintenanceEngine] | None = None
    for _ in range(pairs):
        first, second = rng.sample(pool, 2)
        report.pairs_drawn += 1
        fact_a, fact_b = first[1], second[1]
        if not analyzer.commutes(fact_a, fact_b):
            continue
        if analyzer.relation_report.commutes(
            fact_a.relation, fact_b.relation
        ):
            report.certified_relation += 1
        else:
            report.certified_pattern_only += 1
        if engines is None:
            engines = {
                name: create_engine(name, program)
                for name in engine_names
            }
        _replay_both_orders(
            label, program, engines, [first], [second], report
        )


def fuzz_commutation(
    seeds: Sequence[int] = range(4),
    *,
    pairs: int = 30,
    engine_names: Sequence[str] = ENGINE_NAMES,
    include_sharded: bool = True,
    rng_seed: int = 0,
) -> FuzzReport:
    """Fuzz certified update pairs across programs and engines.

    One random stratified program per seed (plus the keyed ledger
    workload), ``pairs`` update pairs drawn per program; every pair the
    analyzer certifies is replayed in both orders on every engine.
    """
    rng = random.Random(rng_seed)
    report = FuzzReport()
    for label, program, edb, arities, domain in _program_suite(
        seeds, include_sharded
    ):
        _fuzz_program(
            label,
            program,
            edb,
            arities,
            domain,
            pairs=pairs,
            engine_names=engine_names,
            rng=rng,
            report=report,
        )
    return report


def _program_suite(
    seeds: Sequence[int], include_sharded: bool
) -> list[tuple[str, Program, tuple[str, ...], dict[str, int], list]]:
    from ..workloads.families import sharded_by_key
    from ..workloads.synthetic import generate

    suite: list = []
    for seed in seeds:
        synthetic = generate(seed)
        suite.append(
            (
                f"synthetic(seed={seed})",
                synthetic.program,
                tuple(synthetic.edb_relations),
                dict(synthetic.arities),
                list(synthetic.domain),
            )
        )
    if include_sharded:
        keys = [f"acct{i}" for i in range(1, 9)]
        suite.append(
            (
                "sharded_by_key",
                sharded_by_key(),
                ("account", "deposit", "withdrawal", "voided", "whitelisted"),
                {
                    "account": 1,
                    "deposit": 2,
                    "withdrawal": 2,
                    "voided": 2,
                    "whitelisted": 1,
                },
                keys + list(range(10, 100, 17)),
            )
        )
    return suite


def fuzz_parallel_service(
    seeds: Sequence[int] = range(2),
    *,
    transactions: int = 8,
    per_transaction: int = 2,
    engine_names: Sequence[str] = ENGINE_NAMES,
    include_sharded: bool = True,
    rng_seed: int = 0,
    max_workers: int = 4,
) -> FuzzReport:
    """Threaded mode: scheduled-parallel batches vs submission-order serial.

    For each program a transaction batch is drawn from the update pool
    and pushed through the revision service's
    :class:`~repro.service.executor.ParallelExecutor` — commuting groups
    execute in real worker threads against checkpoint snapshots and merge
    by state delta. The resulting model and canonical supports must equal
    a fresh engine's submission-order serial replay; rule-record tables
    (history-dependent by design, see the module docstring) are instead
    validated as a support cover of the final state.
    """
    # Lazy import: repro.service imports this package's scheduler.
    from ..service.executor import ParallelExecutor

    rng = random.Random(rng_seed)
    report = FuzzReport()
    for label, program, edb, arities, domain in _program_suite(
        seeds, include_sharded
    ):
        pool = _update_pool(
            program, edb, arities, domain, rng,
            transactions * per_transaction,
        )
        if len(pool) < 2 * per_transaction:
            continue
        report.programs += 1
        batch = [
            (
                f"txn{i}",
                pool[i * per_transaction : (i + 1) * per_transaction],
            )
            for i in range((len(pool) + per_transaction - 1) // per_transaction)
        ]
        batch = [(name, updates) for name, updates in batch if updates]
        asserted = {clause.head for clause in program if not clause.body}
        for _, updates in batch:
            for operation, fact in updates:
                if operation == "insert_fact":
                    asserted.add(fact)
                else:
                    asserted.discard(fact)
        all_updates = [u for _, updates in batch for u in updates]
        for name in engine_names:
            serial = create_engine(name, program)
            for operation, fact in all_updates:
                serial.apply(operation, fact)
            expected = _signature(serial)
            engine = create_engine(name, program)
            executor = ParallelExecutor(
                engine,
                lambda name=name: create_engine(name, "", build=False),
                max_workers=max_workers,
            )
            try:
                result = executor.execute(batch)
            finally:
                executor.close()
            report.replays += 1
            report.parallel_batches += 1
            report.parallel_groups += result.parallel_groups
            rejected = [o.name for o in result.outcomes if not o.committed]
            actual = _signature(engine)
            if rejected:
                detail = f"transactions rejected: {rejected}"
            elif actual[0] != expected[0]:
                detail = "parallel batch model differs from serial replay"
            elif actual[1] != expected[1]:
                detail = (
                    "parallel batch canonical supports differ from "
                    "serial replay"
                )
            else:
                detail = None
                if actual[2]:
                    report.record_validations += 1
                    defect = _validate_rule_records(
                        engine, actual[2], asserted
                    )
                    if defect is not None:
                        detail = f"after parallel batch, {defect}"
            if detail is not None:
                report.violations.append(
                    FuzzViolation(label, name, all_updates, [], detail)
                )
    return report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.fuzz",
        description=(
            "Differential commutation fuzzer: replay certified-commuting "
            "update pairs in both orders on every engine."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=4, help="synthetic program seeds"
    )
    parser.add_argument(
        "--pairs", type=int, default=30, help="update pairs per program"
    )
    parser.add_argument(
        "--rng-seed", type=int, default=0, help="pair-drawing seed"
    )
    parser.add_argument(
        "--threaded",
        action="store_true",
        help=(
            "also run the threaded mode: scheduled-parallel batch "
            "execution through the revision service vs serial replay"
        ),
    )
    args = parser.parse_args(argv)
    report = fuzz_commutation(
        range(args.seeds), pairs=args.pairs, rng_seed=args.rng_seed
    )
    print(report.summary())
    ok = report.ok
    if args.threaded:
        threaded = fuzz_parallel_service(
            range(args.seeds), rng_seed=args.rng_seed
        )
        print(threaded.summary())
        ok = ok and threaded.ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
