"""Seeded random stratified programs.

The property tests and the migration/bookkeeping sweeps need arbitrary
stratified databases. The generator builds programs that are *stratified by
construction*: relations are created in levels and a rule's negated
hypotheses only reference strictly lower levels, while its positive
hypotheses reference lower-or-equal levels — recursion stays positive.
Every clause is safe by construction (head and negated variables are drawn
from the positive body's variables).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datalog.atoms import Atom, Literal
from ..datalog.clauses import Clause, Program
from ..datalog.terms import Variable


@dataclass(frozen=True)
class SyntheticSpec:
    """Knobs of the random program generator."""

    levels: int = 3
    relations_per_level: int = 3
    rules_per_relation: int = 2
    max_body_positive: int = 2
    negation_probability: float = 0.5
    edb_relations: int = 3
    edb_facts_per_relation: int = 8
    domain_size: int = 8
    max_arity: int = 2


def _relation_name(level: int, index: int) -> str:
    return f"r{level}_{index}"


class SyntheticProgram:
    """A generated program plus the metadata update generators need."""

    def __init__(self, program: Program, edb: list[str], arities: dict[str, int]):
        self.program = program
        self.edb_relations = edb
        self.arities = arities
        self.domain: list = sorted(
            {
                value
                for clause in program
                if not clause.body
                for value in clause.head.args
            },
            key=repr,
        )


def generate(seed: int = 0, spec: SyntheticSpec | None = None) -> SyntheticProgram:
    """Generate a random stratified program (deterministic per seed)."""
    spec = spec or SyntheticSpec()
    rng = random.Random(seed)
    program = Program()
    arities: dict[str, int] = {}
    domain = list(range(spec.domain_size))

    # Level 0: extensional relations with random facts.
    edb = [f"e{i}" for i in range(spec.edb_relations)]
    for name in edb:
        arities[name] = rng.randint(1, spec.max_arity)
        rows = {
            tuple(rng.choice(domain) for _ in range(arities[name]))
            for _ in range(spec.edb_facts_per_relation)
        }
        for row in rows:
            program.add(Clause(Atom(name, row)))

    available = list(edb)  # relations usable in bodies, by level
    strictly_lower = list(edb)
    for level in range(1, spec.levels + 1):
        created: list[str] = []
        for index in range(spec.relations_per_level):
            name = _relation_name(level, index)
            arities[name] = rng.randint(1, spec.max_arity)
            created.append(name)
        for name in created:
            for _ in range(spec.rules_per_relation):
                clause = _random_rule(
                    rng,
                    name,
                    arities,
                    positives=available + created,
                    negatives=strictly_lower,
                    spec=spec,
                )
                if clause is not None:
                    program.add(clause)
        strictly_lower = strictly_lower + created
        available = strictly_lower
    return SyntheticProgram(program, edb, arities)


def _random_rule(
    rng: random.Random,
    head_name: str,
    arities: dict[str, int],
    positives: list[str],
    negatives: list[str],
    spec: SyntheticSpec,
) -> Clause | None:
    """One random safe rule for *head_name*, or None when impossible."""
    body_count = rng.randint(1, spec.max_body_positive)
    chosen = [rng.choice(positives) for _ in range(body_count)]
    # Fresh variables per positive literal position, shared with probability
    # 1/2 to make joins non-trivial.
    variables: list[Variable] = []
    body: list[Literal] = []
    for i, relation in enumerate(chosen):
        args = []
        for j in range(arities[relation]):
            if variables and rng.random() < 0.5:
                args.append(rng.choice(variables))
            else:
                var = Variable(f"V{i}_{j}")
                variables.append(var)
                args.append(var)
        body.append(Literal(Atom(relation, tuple(args)), positive=True))
    if not variables:
        return None
    if negatives and rng.random() < spec.negation_probability:
        relation = rng.choice(negatives)
        args = tuple(
            rng.choice(variables) for _ in range(arities[relation])
        )
        body.append(Literal(Atom(relation, args), positive=False))
    head_args = tuple(
        rng.choice(variables) for _ in range(arities[head_name])
    )
    return Clause(Atom(head_name, head_args), tuple(body))
