"""Scalable workload families exercising stratified negation.

Four realistic shapes, each the kind of database the paper's introduction
motivates (incomplete information, hypothetical reasoning, rule-based
applications), with seeded generators so every run is reproducible:

* :func:`review_pipeline` — the MEET example grown into a conference:
  submissions, reviews, conflicts, a committee, default-accept semantics.
* :func:`reachability` — network monitoring: links, reachability closure,
  and an ``unreachable`` default via negation; updates are link flaps.
* :func:`bill_of_materials` — parts explosion with missing-part exceptions:
  an assembly is buildable unless some transitive part is missing.
* :func:`access_control` — default-deny policy: grants, role inheritance,
  revocations; ``allowed`` holds unless an explicit ``revoked`` applies.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..datalog.builder import ProgramBuilder
from ..datalog.clauses import Program


def review_pipeline(
    papers: int = 20,
    committee: int = 4,
    reviews_per_paper: int = 2,
    seed: int = 0,
) -> Program:
    """A conference pipeline generalising MEET (Example 4).

    Relations: ``submitted/1``, ``reviewer/2``, ``in_pc/1``, ``author/2``,
    ``negative_review/2`` (EDB) and ``has_negative/1``, ``rejected/1``,
    ``accepted/1`` (IDB; accepted has the two MEET deductions).
    """
    rng = random.Random(seed)
    builder = ProgramBuilder()
    members = [f"pc{i}" for i in range(1, committee + 1)]
    for member in members:
        builder.fact("in_pc", member)
    for paper in range(1, papers + 1):
        builder.fact("submitted", paper)
        for reviewer in rng.sample(members, min(reviews_per_paper, committee)):
            builder.fact("reviewer", reviewer, paper)
    # A few committee members author papers (the MEET situation).
    for paper in range(1, papers + 1):
        if rng.random() < 0.15:
            builder.fact("author", rng.choice(members), paper)
    builder.rule("has_negative", ("P",)).pos("negative_review", "R", "P").pos(
        "reviewer", "R", "P"
    )
    builder.rule("rejected", ("P",)).pos("submitted", "P").pos(
        "has_negative", "P"
    )
    builder.rule("accepted", ("P",)).pos("submitted", "P").neg("rejected", "P")
    builder.rule("accepted", ("P",)).pos("author", "A", "P").pos("in_pc", "A")
    return builder.build()


def reachability(
    nodes: int = 12,
    edge_probability: float = 0.2,
    monitor_from: int = 0,
    seed: int = 0,
) -> Program:
    """Network monitoring: reach/2 closure and unreachable/2 by negation.

    ``unreachable`` pairs are the alarms a monitoring system maintains;
    link insertions *remove* alarms and link deletions *add* them — the
    non-monotonicity the paper is about, at scale.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder()
    names = [f"n{i}" for i in range(nodes)]
    for name in names:
        builder.fact("node", name)
    for source in names:
        for target in names:
            if source != target and rng.random() < edge_probability:
                builder.fact("link", source, target)
    builder.rule("reach", ("X", "Y")).pos("link", "X", "Y")
    builder.rule("reach", ("X", "Z")).pos("link", "X", "Y").pos(
        "reach", "Y", "Z"
    )
    builder.rule("unreachable", ("X", "Y")).pos("node", "X").pos(
        "node", "Y"
    ).neg("reach", "X", "Y")
    return builder.build()


def bill_of_materials(
    assemblies: int = 6,
    depth: int = 3,
    fanout: int = 2,
    missing: Sequence[str] = (),
    seed: int = 0,
) -> Program:
    """Parts explosion with exceptions.

    ``uses/2`` is a forest of part trees; ``requires/2`` its closure;
    ``blocked/1`` holds for assemblies requiring a ``missing/1`` part and
    ``buildable/1`` is the default-positive complement.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder()
    counter = 0

    def grow(parent: str, level: int) -> None:
        nonlocal counter
        if level >= depth:
            return
        for _ in range(rng.randint(1, fanout)):
            counter += 1
            child = f"part{counter}"
            builder.fact("uses", parent, child)
            grow(child, level + 1)

    for index in range(1, assemblies + 1):
        root = f"asm{index}"
        builder.fact("assembly", root)
        grow(root, 0)
    for part in missing:
        builder.fact("missing", part)
    builder.rule("requires", ("X", "Y")).pos("uses", "X", "Y")
    builder.rule("requires", ("X", "Z")).pos("uses", "X", "Y").pos(
        "requires", "Y", "Z"
    )
    builder.rule("blocked", ("A",)).pos("assembly", "A").pos(
        "requires", "A", "P"
    ).pos("missing", "P")
    builder.rule("buildable", ("A",)).pos("assembly", "A").neg("blocked", "A")
    return builder.build()


def access_control(
    users: int = 10,
    roles: int = 4,
    resources: int = 6,
    seed: int = 0,
) -> Program:
    """Default-deny policy with role inheritance and revocations.

    ``member/2``, ``subrole/2``, ``grant/2``, ``revoked/2`` (EDB);
    ``role_of/2`` (membership through inheritance), ``granted/2`` and
    ``allowed/2`` = granted unless revoked (IDB).
    """
    rng = random.Random(seed)
    builder = ProgramBuilder()
    role_names = [f"role{i}" for i in range(1, roles + 1)]
    for i, role in enumerate(role_names[1:], start=1):
        builder.fact("subrole", role, role_names[rng.randrange(i)])
    for u in range(1, users + 1):
        builder.fact("member", f"user{u}", rng.choice(role_names))
    for r in range(1, resources + 1):
        for role in role_names:
            if rng.random() < 0.4:
                builder.fact("grant", role, f"res{r}")
    builder.rule("role_of", ("U", "R")).pos("member", "U", "R")
    builder.rule("role_of", ("U", "S")).pos("role_of", "U", "R").pos(
        "subrole", "R", "S"
    )
    builder.rule("granted", ("U", "X")).pos("role_of", "U", "R").pos(
        "grant", "R", "X"
    )
    builder.rule("allowed", ("U", "X")).pos("granted", "U", "X").neg(
        "revoked", "U", "X"
    )
    return builder.build()


def sharded_by_key(
    accounts: int = 8,
    deposits_per_account: int = 3,
    seed: int = 0,
) -> Program:
    """A single-shard ledger whose rule chain carries an account key.

    Relations: ``account/1``, ``deposit/2``, ``withdrawal/2``,
    ``voided/2``, ``whitelisted/1`` (EDB) and ``posted/2``, ``active/1``,
    ``overdrawn/1``, ``alert/1`` (IDB); ``reviewed/1`` is the update
    target (negated, asserted later — the maintenance idiom, DL005).

    Every rule threads the account key ``K`` from body to head, so an
    update about one account provably cannot reach another account's
    facts — *argument-level* cones certify cross-account commutation.
    The whole program is one weakly-connected component, so the
    relation-level :class:`~repro.analysis.IndependenceReport` certifies
    **nothing** here: this is the workload the E21 refinement guard runs
    on.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder()
    keys = [f"acct{i}" for i in range(1, accounts + 1)]
    for key in keys:
        builder.fact("account", key)
        for _ in range(deposits_per_account):
            builder.fact("deposit", key, rng.randrange(10, 100))
        if rng.random() < 0.5:
            builder.fact("withdrawal", key, rng.randrange(10, 100))
    # Deterministic exemplars so the negated EDB relations are defined.
    builder.fact("voided", keys[0], 0)
    builder.fact("whitelisted", keys[-1])
    builder.rule("posted", ("K", "V")).pos("deposit", "K", "V").neg(
        "voided", "K", "V"
    )
    builder.rule("active", ("K",)).pos("account", "K").pos(
        "posted", "K", "_V"
    )
    builder.rule("overdrawn", ("K",)).pos("withdrawal", "K", "_V").pos(
        "active", "K"
    ).neg("whitelisted", "K")
    builder.rule("alert", ("K",)).pos("overdrawn", "K").neg("reviewed", "K")
    return builder.build()


FAMILY_BUILDERS = {
    "review_pipeline": review_pipeline,
    "reachability": reachability,
    "bill_of_materials": bill_of_materials,
    "access_control": access_control,
    "sharded_by_key": sharded_by_key,
}
