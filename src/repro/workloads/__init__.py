"""Workload generators: the paper's examples, realistic families, random
stratified programs and update sequences."""

from .families import (
    FAMILY_BUILDERS,
    access_control,
    bill_of_materials,
    reachability,
    review_pipeline,
    sharded_by_key,
)
from .paper import (
    cascade_example,
    conf,
    congress,
    meet,
    negation_chain,
    pods,
    staleness_counterexample,
)
from .synthetic import SyntheticProgram, SyntheticSpec, generate
from .updates import (
    asserted_facts,
    flip_sequence,
    keyed_transactions,
    mixed_updates,
    random_updates,
)

#: Expected static-analysis codes per workload program — the explicit
#: annotations the `repro check --workloads` self-lint verifies against.
#: Every entry is intentional:
#:
#: * ``DL006`` — each workload's top relation is an *output*, never a body
#:   reference;
#: * ``DL004``/``DL005`` — the "undefined" relations (``rejected``, ``p0``,
#:   ``negative_review``, ``missing``, ``revoked``, ``p``, ``d``) are the
#:   *update targets*: the paper's examples insert them later, which is the
#:   whole point of maintenance;
#: * ``DL010`` in ``reachability`` — ``unreachable`` deliberately pairs all
#:   nodes before filtering by negation (the default-complement idiom);
#: * ``DL007``/``DL010`` in ``synthetic`` — random bodies legitimately
#:   contain singletons and cross products; the generator stresses the
#:   planner with them on purpose.
#:
#: A code listed here but absent from the program's report is itself a
#: self-lint failure: stale annotations rot like stale comments.
EXPECTED_DIAGNOSTICS: dict[str, tuple[str, ...]] = {
    "pods": ("DL006",),
    "conf": ("DL005", "DL006"),
    "congress": ("DL005", "DL006"),
    "meet": ("DL005", "DL006"),
    "negation_chain": ("DL005", "DL006"),
    "cascade_example": ("DL004", "DL005", "DL006"),
    "staleness_counterexample": ("DL005", "DL006"),
    "review_pipeline": ("DL004", "DL006"),
    "reachability": ("DL006", "DL010"),
    "bill_of_materials": ("DL004", "DL006"),
    "access_control": ("DL005", "DL006"),
    "sharded_by_key": ("DL005", "DL006"),
    "synthetic": ("DL006", "DL007", "DL010"),
}


def named_programs() -> dict:
    """Every built-in workload program, by annotation name.

    The mapping the self-lint iterates: name -> freshly built
    :class:`~repro.datalog.clauses.Program` at default scale (plus the
    seed-0 synthetic program).
    """
    return {
        "pods": pods(),
        "conf": conf(),
        "congress": congress(),
        "meet": meet(),
        "negation_chain": negation_chain(),
        "cascade_example": cascade_example(),
        "staleness_counterexample": staleness_counterexample(),
        "review_pipeline": review_pipeline(),
        "reachability": reachability(),
        "bill_of_materials": bill_of_materials(),
        "access_control": access_control(),
        "sharded_by_key": sharded_by_key(),
        "synthetic": generate(0).program,
    }

__all__ = [
    "EXPECTED_DIAGNOSTICS",
    "FAMILY_BUILDERS",
    "SyntheticProgram",
    "SyntheticSpec",
    "access_control",
    "asserted_facts",
    "bill_of_materials",
    "cascade_example",
    "conf",
    "congress",
    "flip_sequence",
    "generate",
    "keyed_transactions",
    "meet",
    "mixed_updates",
    "named_programs",
    "negation_chain",
    "pods",
    "random_updates",
    "reachability",
    "review_pipeline",
    "sharded_by_key",
    "staleness_counterexample",
]
