"""Workload generators: the paper's examples, realistic families, random
stratified programs and update sequences."""

from .families import (
    FAMILY_BUILDERS,
    access_control,
    bill_of_materials,
    reachability,
    review_pipeline,
)
from .paper import (
    cascade_example,
    conf,
    congress,
    meet,
    negation_chain,
    pods,
    staleness_counterexample,
)
from .synthetic import SyntheticProgram, SyntheticSpec, generate
from .updates import (
    asserted_facts,
    flip_sequence,
    mixed_updates,
    random_updates,
)

__all__ = [
    "FAMILY_BUILDERS",
    "SyntheticProgram",
    "SyntheticSpec",
    "access_control",
    "asserted_facts",
    "bill_of_materials",
    "cascade_example",
    "conf",
    "congress",
    "flip_sequence",
    "generate",
    "meet",
    "mixed_updates",
    "negation_chain",
    "pods",
    "random_updates",
    "reachability",
    "review_pipeline",
    "staleness_counterexample",
]
