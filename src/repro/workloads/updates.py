"""Seeded update-sequence generators.

An update sequence is a list of ``(operation, subject)`` pairs consumable by
:meth:`repro.core.base.MaintenanceEngine.apply`. The generator draws
insertions of new extensional facts and deletions of currently asserted
ones, against either a :class:`~repro.workloads.synthetic.SyntheticProgram`
or any program with known extensional relations.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause, Program

Update = tuple[str, object]  # (operation, Atom or Clause)


def _edb_state(
    program: Program, edb_relations: Sequence[str]
) -> dict[str, set[tuple]]:
    state: dict[str, set[tuple]] = {name: set() for name in edb_relations}
    for clause in program:
        if not clause.body and clause.head.relation in state:
            state[clause.head.relation].add(clause.head.args)
    return state


def random_updates(
    program: Program,
    edb_relations: Sequence[str],
    arities: dict[str, int],
    domain: Sequence,
    count: int = 10,
    insert_ratio: float = 0.5,
    seed: int = 0,
) -> list[Update]:
    """A sequence of insert_fact/delete_fact updates over the EDB.

    Deletions always target a fact asserted at that point of the sequence
    (tracked through the sequence itself), so replaying the sequence on an
    engine never raises. Insertions draw fresh tuples from the domain.
    """
    rng = random.Random(seed)
    state = _edb_state(program, edb_relations)
    updates: list[Update] = []
    domain = list(domain) or [0, 1]
    for _ in range(count):
        deletable = [
            (name, row) for name, rows in state.items() for row in rows
        ]
        do_insert = rng.random() < insert_ratio or not deletable
        if do_insert:
            fresh = _fresh_row(rng, state, edb_relations, arities, domain)
            if fresh is None:  # every relation is full: delete instead
                do_insert = False
            else:
                name, row = fresh
                state[name].add(row)
                updates.append(("insert_fact", Atom(name, row)))
        if not do_insert:
            if not deletable:
                break  # nothing left to do either way
            name, row = rng.choice(deletable)
            state[name].discard(row)
            updates.append(("delete_fact", Atom(name, row)))
    return updates


def _fresh_row(
    rng: random.Random,
    state: dict[str, set[tuple]],
    edb_relations: Sequence[str],
    arities: dict[str, int],
    domain: list,
) -> tuple[str, tuple] | None:
    """A (relation, row) not currently asserted, or None when all full."""
    names = list(edb_relations)
    rng.shuffle(names)
    for name in names:
        if len(state[name]) >= len(domain) ** arities[name]:
            continue  # relation saturated over the domain
        while True:
            row = tuple(rng.choice(domain) for _ in range(arities[name]))
            if row not in state[name]:
                return name, row
    return None


def keyed_transactions(
    program: Program,
    edb_relations: Sequence[str],
    arities: dict[str, int],
    key_column: int = 0,
    updates_per_transaction: int = 2,
    insert_ratio: float = 0.7,
    seed: int = 0,
) -> list[tuple[str, list[Update]]]:
    """One transaction per key: updates sharing that key's column value.

    The keys are the distinct values of ``key_column`` across the
    asserted EDB facts; each transaction ``txn_<key>`` mixes insertions
    of fresh rows carrying the key with deletions of asserted rows
    carrying it (tracked through the batch, so replay never raises).
    This is the scheduler's favourable case: on a by-key-sharded program
    the transactions pairwise commute at argument level while sharing
    every relation at relation level.
    """
    rng = random.Random(seed)
    state = _edb_state(program, edb_relations)
    keys = sorted(
        {
            row[key_column]
            for rows in state.values()
            for row in rows
            if len(row) > key_column
        },
        key=str,
    )
    values: list = sorted(
        {
            value
            for rows in state.values()
            for row in rows
            for i, value in enumerate(row)
            if i != key_column
        },
        key=str,
    ) or [0, 1]
    keyed_names = [
        name for name in edb_relations if arities[name] > key_column
    ]
    transactions: list[tuple[str, list[Update]]] = []
    for key in keys:
        updates: list[Update] = []
        for _ in range(updates_per_transaction):
            deletable = [
                (name, row)
                for name, rows in state.items()
                for row in rows
                if len(row) > key_column and row[key_column] == key
            ]
            inserted = False
            if rng.random() < insert_ratio or not deletable:
                names = list(keyed_names)
                rng.shuffle(names)
                for name in names:
                    for _attempt in range(8):
                        row = tuple(
                            key if i == key_column else rng.choice(values)
                            for i in range(arities[name])
                        )
                        if row not in state[name]:
                            state[name].add(row)
                            updates.append(("insert_fact", Atom(name, row)))
                            inserted = True
                            break
                    if inserted:
                        break
            if not inserted and deletable:
                name, row = rng.choice(deletable)
                state[name].discard(row)
                updates.append(("delete_fact", Atom(name, row)))
        if updates:
            transactions.append((f"txn_{key}", updates))
    return transactions


def flip_sequence(
    facts: Iterable[Atom], seed: int = 0, count: int | None = None
) -> list[Update]:
    """Alternate deletions and re-insertions of the given asserted facts.

    A simple churn pattern: each step deletes a present fact or re-inserts
    a previously deleted one, useful for steady-state migration measurement.
    """
    rng = random.Random(seed)
    present = list(facts)
    absent: list[Atom] = []
    updates: list[Update] = []
    steps = count if count is not None else 2 * len(present)
    for _ in range(steps):
        if present and (not absent or rng.random() < 0.5):
            index = rng.randrange(len(present))
            fact = present.pop(index)
            absent.append(fact)
            updates.append(("delete_fact", fact))
        elif absent:
            index = rng.randrange(len(absent))
            fact = absent.pop(index)
            present.append(fact)
            updates.append(("insert_fact", fact))
    return updates


def asserted_facts(
    program: Program, relations: Sequence[str] | None = None
) -> list[Atom]:
    """The asserted (EDB) facts of *program*, optionally filtered."""
    wanted = set(relations) if relations is not None else None
    return [
        clause.head
        for clause in program
        if not clause.body
        and (wanted is None or clause.head.relation in wanted)
    ]


def mixed_updates(
    program: Program,
    edb_relations: Sequence[str],
    arities: dict[str, int],
    domain: Sequence,
    count: int = 10,
    rule_ratio: float = 0.3,
    seed: int = 0,
) -> list[tuple[str, object]]:
    """Fact updates interleaved with rule deletions and re-insertions.

    Rule updates exercise restratification and the engines' rule
    procedures; a deleted rule is always one currently in the program (the
    sequence tracks itself), and deleted rules are re-inserted later with
    probability proportional to the mix, so the program never degenerates.
    """
    rng = random.Random(seed)
    fact_updates = random_updates(
        program, edb_relations, arities, domain, count=count, seed=seed
    )
    present_rules = [clause for clause in program.rules]
    absent_rules: list[Clause] = []
    result: list[tuple[str, object]] = []
    for update in fact_updates:
        if rng.random() < rule_ratio and (present_rules or absent_rules):
            do_delete = present_rules and (
                not absent_rules or rng.random() < 0.5
            )
            if do_delete:
                index = rng.randrange(len(present_rules))
                clause = present_rules.pop(index)
                absent_rules.append(clause)
                result.append(("delete_rule", clause))
            else:
                index = rng.randrange(len(absent_rules))
                clause = absent_rules.pop(index)
                present_rules.append(clause)
                result.append(("insert_rule", clause))
        result.append(update)
    return result
