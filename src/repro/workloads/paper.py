"""The six databases of the paper, parameterised by scale.

Each function reproduces one of the paper's worked examples exactly at its
original shape and extrapolates it to any size, so the benchmarks can sweep
over ``l`` while the unit tests pin the paper's own instances.
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.builder import ProgramBuilder
from ..datalog.clauses import Program


def pods(l: int = 10, accepted: Sequence[int] = (2, 4)) -> Program:
    """Section 3: PODS = {submitted(1..l), accepted(n1..nk),
    rejected(x) <- not accepted(x) [& submitted(x)]}.

    The paper's rule is ``rejected(x) <- ¬accepted(x)`` with the domain
    closed by the particularization axioms; range restriction expresses the
    same meaning with an explicit ``submitted(x)`` hypothesis.
    """
    if not all(1 <= n <= l for n in accepted):
        raise ValueError("accepted papers must lie in 1..l")
    builder = ProgramBuilder()
    for i in range(1, l + 1):
        builder.fact("submitted", i)
    for n in accepted:
        builder.fact("accepted", n)
    builder.rule("rejected", ("X",)).neg("accepted", "X").pos("submitted", "X")
    return builder.build()


def conf(l: int = 3) -> Program:
    """Example 1: CONF = {submitted(1..l), late(l+1),
    accepted(x) <- submitted(x) & not rejected(x), accepted(l+1)}.

    The asserted ``accepted(l+1)`` is the fact the static solution migrates
    on an insertion of ``rejected(l+1)`` and the dynamic solutions save.
    """
    builder = ProgramBuilder()
    for i in range(1, l + 1):
        builder.fact("submitted", i)
    builder.fact("late", l + 1)
    builder.rule("accepted", ("X",)).pos("submitted", "X").neg("rejected", "X")
    builder.fact("accepted", l + 1)
    return builder.build()


def negation_chain(n: int = 3) -> Program:
    """Example 2: P = {p1 <- not p0, p2 <- not p1, ..., pn <- not p(n-1)}.

    ``M(P) = {p1, p3, p5, ...}``. The insertion of ``p0`` flips the whole
    chain, which is what defeats unsigned dynamic supports.
    """
    if n < 1:
        raise ValueError("chain length must be at least 1")
    builder = ProgramBuilder()
    for i in range(1, n + 1):
        builder.rule(f"p{i}", ()).neg(f"p{i - 1}")
    return builder.build()


def congress(l: int = 2) -> Program:
    """Example 3: CONGRESS = {submitted(1..l),
    accepted(x) <- submitted(x) & not rejected(x),
    accepted(l) <- submitted(l)}.

    The second rule gives ``accepted(l)`` a pairwise-smaller support
    ``({submitted}, ∅)``; keeping it prevents the migration of
    ``accepted(l)`` when some ``rejected(i)`` is inserted.
    """
    builder = ProgramBuilder()
    for i in range(1, l + 1):
        builder.fact("submitted", i)
    builder.rule("accepted", ("X",)).pos("submitted", "X").neg("rejected", "X")
    builder.rule("accepted", (l,)).pos("submitted", l)
    return builder.build()


def meet(
    l: int = 3,
    committee: Sequence[str] = ("name1", "name2"),
    authored: Sequence[tuple[str, int]] = (("name2", 1),),
) -> Program:
    """Example 4: MEET — two independent deductions of acceptance.

    ``accepted(x) <- submitted(x) & not rejected(x)`` and
    ``accepted(y) <- author(x, y) & in_program_committee(x)``. A paper
    authored by a committee member stays accepted when rejected — the
    sets-of-sets solution keeps both supports, the single-support solution
    migrates.
    """
    builder = ProgramBuilder()
    for i in range(1, l + 1):
        builder.fact("submitted", i)
    for member in committee:
        builder.fact("in_program_committee", member)
    for author, paper in authored:
        builder.fact("author", author, paper)
    builder.rule("accepted", ("X",)).pos("submitted", "X").neg("rejected", "X")
    builder.rule("accepted", ("Y",)).pos("author", "X", "Y").pos(
        "in_program_committee", "X"
    )
    return builder.build()


def cascade_example() -> Program:
    """Section 5.1: P = {r <- p, q <- r, q <- not p}; M(P) = {q}.

    ``INSERT(p)`` is the update on which the older solutions remove and
    re-insert ``q`` while the cascade (saturating before REMOVENEG) never
    removes it.
    """
    builder = ProgramBuilder()
    builder.rule("r", ()).pos("p")
    builder.rule("q", ()).pos("r")
    builder.rule("q", ()).neg("p")
    return builder.build()


def staleness_counterexample() -> Program:
    """DESIGN.md faithfulness note 1: {a, c, b <- a, b <- c & not d}.

    ``INSERT(d)`` then ``DELETE(a)`` leaves the paper-mode sets-of-sets
    engine holding ``b`` with a stale Pos element {c, -d}.
    """
    builder = ProgramBuilder()
    builder.fact("a")
    builder.fact("c")
    builder.rule("b", ()).pos("a")
    builder.rule("b", ()).pos("c").neg("d")
    return builder.build()
