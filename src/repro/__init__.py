"""repro — Maintenance of stratified databases as a belief revision system.

A complete reproduction of Apt & Pugin, "Maintenance of Stratified Databases
Viewed as a Belief Revision System" (PODS 1987): a stratified Datalog engine
with the delta-driven saturation of [RLK], the standard-model semantics of
[ABW], and one maintenance engine per solution the paper develops, plus the
JTMS/ATMS substrate the paper draws its ideas from.

Quickstart::

    from repro import CascadeEngine

    engine = CascadeEngine('''
        submitted(1). submitted(2). submitted(3).
        rejected(2).
        accepted(X) :- submitted(X), not rejected(X).
    ''')
    print(sorted(map(str, engine.model.facts_of("accepted"))))
    result = engine.insert_fact("rejected(3)")
    print(result.summary())

Durability — the revision history the paper's model implies is a
first-class, persistent object via :mod:`repro.store`: every admitted
update is write-ahead journaled, snapshots make reopening cost *restore +
replay tail* instead of a rebuild, transactions batch updates atomically,
and ``undo``/``redo`` time-travel the belief state::

    from repro import open_store

    store = open_store("mydb", program="e(1). p(X) :- e(X), not q(X).")
    store.insert_fact("q(1)")
    with store.transaction():            # all-or-nothing batch
        store.insert_fact("e(2)")
        store.insert_fact("e(3)")
    store.snapshot()                     # durable checkpoint
    store.undo(1)                        # contract the last revision
    store.redo(1)                        # ... and re-expand it
    store = open_store("mydb")           # crash-safe reopen at the head

See ``examples/persistent_session.py`` for the crash-recovery walkthrough.
"""

from .core import (
    CascadeEngine,
    DynamicEngine,
    ENGINE_NAMES,
    Explanation,
    ExplanationError,
    FactLevelEngine,
    MaintenanceEngine,
    MaintenanceStats,
    PAPER_SOLUTION_NAMES,
    RecomputeEngine,
    SOUND_ENGINE_NAMES,
    SetOfSetsEngine,
    StaticEngine,
    UpdateResult,
    create_engine,
    engine_from_state,
    explain,
    explain_absence,
)
from .datalog import (
    Atom,
    Backchainer,
    Clause,
    DatalogError,
    Model,
    ParseError,
    Program,
    ProgramBuilder,
    SafetyError,
    StratificationError,
    StratifiedDatabase,
    UpdateError,
    Variable,
    ask,
    atom,
    compute_model,
    fact,
    neg,
    parse_atom,
    parse_clause,
    parse_fact,
    parse_program,
    pos,
    query,
    rule,
    stratify,
    variables,
)
from .store import (
    Journal,
    Store,
    StoreError,
    Transaction,
    TransactionAbort,
    open_store,
)

__version__ = "1.1.0"

__all__ = [
    "Atom",
    "Backchainer",
    "CascadeEngine",
    "Clause",
    "DatalogError",
    "DynamicEngine",
    "ENGINE_NAMES",
    "Explanation",
    "ExplanationError",
    "FactLevelEngine",
    "Journal",
    "MaintenanceEngine",
    "MaintenanceStats",
    "Model",
    "PAPER_SOLUTION_NAMES",
    "ParseError",
    "Program",
    "ProgramBuilder",
    "RecomputeEngine",
    "SOUND_ENGINE_NAMES",
    "SafetyError",
    "SetOfSetsEngine",
    "StaticEngine",
    "Store",
    "StoreError",
    "StratificationError",
    "StratifiedDatabase",
    "Transaction",
    "TransactionAbort",
    "UpdateError",
    "UpdateResult",
    "Variable",
    "ask",
    "atom",
    "compute_model",
    "create_engine",
    "engine_from_state",
    "explain",
    "explain_absence",
    "fact",
    "neg",
    "open_store",
    "parse_atom",
    "parse_clause",
    "parse_fact",
    "parse_program",
    "pos",
    "query",
    "rule",
    "stratify",
    "variables",
]
