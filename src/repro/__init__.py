"""repro — Maintenance of stratified databases as a belief revision system.

A complete reproduction of Apt & Pugin, "Maintenance of Stratified Databases
Viewed as a Belief Revision System" (PODS 1987): a stratified Datalog engine
with the delta-driven saturation of [RLK], the standard-model semantics of
[ABW], and one maintenance engine per solution the paper develops, plus the
JTMS/ATMS substrate the paper draws its ideas from.

Quickstart::

    from repro import CascadeEngine

    engine = CascadeEngine('''
        submitted(1). submitted(2). submitted(3).
        rejected(2).
        accepted(X) :- submitted(X), not rejected(X).
    ''')
    print(sorted(map(str, engine.model.facts_of("accepted"))))
    result = engine.insert_fact("rejected(3)")
    print(result.summary())
"""

from .core import (
    CascadeEngine,
    DynamicEngine,
    ENGINE_NAMES,
    Explanation,
    ExplanationError,
    FactLevelEngine,
    MaintenanceEngine,
    MaintenanceStats,
    PAPER_SOLUTION_NAMES,
    RecomputeEngine,
    SOUND_ENGINE_NAMES,
    SetOfSetsEngine,
    StaticEngine,
    UpdateResult,
    create_engine,
    explain,
    explain_absence,
)
from .datalog import (
    Atom,
    Backchainer,
    Clause,
    DatalogError,
    Model,
    ParseError,
    Program,
    ProgramBuilder,
    SafetyError,
    StratificationError,
    StratifiedDatabase,
    UpdateError,
    Variable,
    ask,
    atom,
    compute_model,
    fact,
    neg,
    parse_atom,
    parse_clause,
    parse_fact,
    parse_program,
    pos,
    query,
    rule,
    stratify,
    variables,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Backchainer",
    "CascadeEngine",
    "Clause",
    "DatalogError",
    "DynamicEngine",
    "ENGINE_NAMES",
    "Explanation",
    "ExplanationError",
    "FactLevelEngine",
    "MaintenanceEngine",
    "MaintenanceStats",
    "Model",
    "PAPER_SOLUTION_NAMES",
    "ParseError",
    "Program",
    "ProgramBuilder",
    "RecomputeEngine",
    "SOUND_ENGINE_NAMES",
    "SafetyError",
    "SetOfSetsEngine",
    "StaticEngine",
    "StratificationError",
    "StratifiedDatabase",
    "UpdateError",
    "UpdateResult",
    "Variable",
    "ask",
    "atom",
    "compute_model",
    "create_engine",
    "explain",
    "explain_absence",
    "fact",
    "neg",
    "parse_atom",
    "parse_clause",
    "parse_fact",
    "parse_program",
    "pos",
    "query",
    "rule",
    "stratify",
    "variables",
]
