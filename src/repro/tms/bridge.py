"""The bridge between stratified databases and truth maintenance systems.

The paper's title move: view the maintained database as a belief revision
system. This module makes the correspondence executable:

* each *ground instance* of a database rule is a justification — positive
  body facts form the in-list, negated ground atoms the out-list;
* asserted facts are premises;
* the network of a stratified database is stratified in the JTMS sense
  (no out-list edge in a cycle), its well-founded labelling is unique, and
  the IN nodes are exactly the standard model ``M(P)``
  (:func:`standard_model_via_jtms`, verified by tests and experiment E13);
* mapping EDB facts to ATMS assumptions (and negated atoms to explicit
  "absent" assumptions) makes each fact's ATMS label the fact-level
  sets-of-sets support of section 5.2 — de Kleer's multiple contexts are
  the paper's "all possible original deductions".

Grounding enumerates rule instances against the *positive envelope* (the
model of the program with negative hypotheses dropped): instances whose
positive body can never hold are irrelevant to every labelling.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Union

from ..datalog.atoms import Atom
from ..datalog.clauses import Clause, Program
from ..datalog.database import StratifiedDatabase
from ..datalog.evaluation import _iter_matches, compute_model
from ..datalog.model import Model
from ..datalog.parser import parse_program
from ..datalog.unify import substitute_args
from .atms import ATMS
from .jtms import JTMS


class GroundInstance(NamedTuple):
    """One ground instance of a program clause."""

    head: Atom
    clause: Clause
    positive_facts: tuple[Atom, ...]
    negative_atoms: tuple[Atom, ...]


def _as_program(source: Union[Program, StratifiedDatabase, str]) -> Program:
    if isinstance(source, StratifiedDatabase):
        return source.program
    if isinstance(source, str):
        return parse_program(source)
    return source


def positive_envelope(program: Program) -> Model:
    """The model of the program with negative hypotheses dropped.

    An upper bound on every fact that can ever be derived: negation can
    only block derivations, never enable facts of new relations... except
    that dropping ``not r(X)`` *widens* each rule, so the envelope is a
    superset of the standard model for any update state of the EDB.
    """
    widened = Program()
    for clause in program:
        widened.add(Clause(clause.head, clause.positive_body))
    return compute_model(widened)


def ground_instances(
    source: Union[Program, StratifiedDatabase, str]
) -> Iterator[GroundInstance]:
    """Enumerate the relevant ground instances of every clause."""
    program = _as_program(source)
    envelope = positive_envelope(program)
    for clause in program:
        for subst, facts in _iter_matches(clause, envelope):
            head = Atom(
                clause.head.relation, substitute_args(clause.head.args, subst)
            )
            negatives = tuple(
                Atom(lit.relation, substitute_args(lit.args, subst))
                for lit in clause.negative_body
            )
            yield GroundInstance(head, clause, facts, negatives)


def to_jtms(source: Union[Program, StratifiedDatabase, str]) -> JTMS:
    """Build the justification network of a stratified database.

    Nodes are ground atoms; one justification per ground rule instance;
    asserted facts become premises.
    """
    jtms = JTMS()
    for instance in ground_instances(source):
        jtms.justify(
            instance.head,
            in_list=instance.positive_facts,
            out_list=instance.negative_atoms,
            informant=instance.clause,
        )
    return jtms


def standard_model_via_jtms(
    source: Union[Program, StratifiedDatabase, str]
) -> frozenset[Atom]:
    """The IN nodes of the well-founded labelling — equal to M(P)."""
    return to_jtms(source).in_nodes()


def absent(atom: Atom) -> tuple[str, Atom]:
    """The ATMS assumption standing for "atom stays underivable"."""
    return ("absent", atom)


def to_atms(
    source: Union[Program, StratifiedDatabase, str]
) -> ATMS:
    """Build the assumption network of a stratified database.

    EDB assertions become assumptions (each fact's presence is a choice de
    Kleer's multiple contexts range over); a negated ground atom becomes the
    assumption :func:`absent`\\ (atom). A fact's label then enumerates its
    fact-level supports: the minimal sets of assertions-present and
    atoms-absent that derive it.
    """
    program = _as_program(source)
    atms = ATMS()
    for instance in ground_instances(program):
        if not instance.clause.body:
            atms.add_assumption(instance.head)
            continue
        antecedents: list = list(instance.positive_facts)
        for atom in instance.negative_atoms:
            node = absent(atom)
            atms.add_assumption(node)
            antecedents.append(node)
        atms.justify(instance.head, antecedents, informant=instance.clause)
    # An asserted atom cannot simultaneously be assumed absent. (For
    # *derived* atoms the inconsistency is context-dependent and the
    # classical assumption-level nogoods cannot express it; callers pick a
    # consistent environment with :func:`model_context`.)
    assumptions = atms.assumptions()
    for node in assumptions:
        if isinstance(node, Atom) and absent(node) in assumptions:
            atms.add_nogood({node, absent(node)})
    return atms


def model_context(
    atms: ATMS, source: Union[Program, StratifiedDatabase, str]
) -> frozenset:
    """The ATMS environment describing the current database state.

    Contains every asserted fact's assumption plus ``absent(a)`` for every
    assumed-absent atom that is indeed not in the standard model; the ATMS
    context of this environment restricted to real atoms is M(P).
    """
    program = _as_program(source)
    model = compute_model(program)
    environment = set()
    for node in atms.assumptions():
        if isinstance(node, Atom):
            if Clause(node) in program:
                environment.add(node)
        else:
            __, atom = node
            if atom not in model:
                environment.add(node)
    return frozenset(environment)
