"""An assumption-based truth maintenance system (de Kleer 1986).

The paper contrasts its supports with de Kleer's ATMS, which "uses the
previous form [whole proof structures] which allows him to maintain several
contexts at the same time". An ATMS node's *label* is the set of minimal
environments (sets of assumptions) under which the node holds; contexts are
never committed to, so revising a belief means moving to another
environment rather than relabelling.

This implementation covers the monotone core of the ATMS: assumptions,
justifications over nodes, label propagation to a fixpoint, nogoods (an
inconsistent environment prunes every label containing it), and context
queries. Negative hypotheses are *not* part of the classical ATMS — which
is exactly the paper's point when it keeps, for each deduction, the set of
relations negated inside it; the bridge maps only the positive structure
and treats negated atoms as extra assumptions ("the fact stays absent").
"""

from __future__ import annotations

from typing import Hashable, Iterable

NodeId = Hashable

Environment = frozenset
"""A set of assumption ids; the empty environment means "always"."""


def minimize(environments: set[Environment]) -> set[Environment]:
    """Keep the ⊆-minimal environments (labels are antichains)."""
    ordered = sorted(environments, key=len)
    minimal: list[Environment] = []
    for environment in ordered:
        if not any(kept <= environment for kept in minimal):
            minimal.append(environment)
    return set(minimal)


class ATMSJustification:
    """``antecedents ⊢ consequent`` — purely positive, as in de Kleer."""

    __slots__ = ("consequent", "antecedents", "informant")

    def __init__(
        self,
        consequent: NodeId,
        antecedents: Iterable[NodeId],
        informant: object = None,
    ):
        self.consequent = consequent
        self.antecedents = frozenset(antecedents)
        self.informant = informant

    def __repr__(self) -> str:
        return (
            f"ATMSJustification({self.consequent!r} <- "
            f"{sorted(map(repr, self.antecedents))})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ATMSJustification)
            and other.consequent == self.consequent
            and other.antecedents == self.antecedents
        )

    def __hash__(self) -> int:
        return hash((self.consequent, self.antecedents))


class ATMS:
    """Assumptions, justifications, labels and nogoods."""

    def __init__(self):
        self._labels: dict[NodeId, set[Environment]] = {}
        self._assumptions: set[NodeId] = set()
        self._justifications: set[ATMSJustification] = set()
        self._consumers: dict[NodeId, set[ATMSJustification]] = {}
        self._nogoods: set[Environment] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        self._labels.setdefault(node, set())

    def nodes(self) -> frozenset[NodeId]:
        return frozenset(self._labels)

    def add_assumption(self, node: NodeId) -> None:
        """Make *node* an assumption: its label gains ``{{node}}``."""
        self.add_node(node)
        if node in self._assumptions:
            return
        self._assumptions.add(node)
        self._add_environments(node, {frozenset({node})})

    def assumptions(self) -> frozenset[NodeId]:
        return frozenset(self._assumptions)

    def add_premise(self, node: NodeId) -> None:
        """Give *node* the empty environment: it holds in every context."""
        self.add_node(node)
        self._add_environments(node, {frozenset()})

    def justify(
        self,
        consequent: NodeId,
        antecedents: Iterable[NodeId],
        informant: object = None,
    ) -> ATMSJustification:
        """Install a justification and propagate labels."""
        justification = ATMSJustification(consequent, antecedents, informant)
        self.add_node(consequent)
        for node in justification.antecedents:
            self.add_node(node)
        if justification in self._justifications:
            return justification
        self._justifications.add(justification)
        for node in justification.antecedents:
            self._consumers.setdefault(node, set()).add(justification)
        self._propagate(justification)
        return justification

    def add_nogood(self, environment: Iterable[NodeId]) -> None:
        """Declare an environment inconsistent and prune all labels."""
        nogood = frozenset(environment)
        self._nogoods.add(nogood)
        for node, label in self._labels.items():
            pruned = {env for env in label if not nogood <= env}
            if pruned != label:
                self._labels[node] = pruned

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def label(self, node: NodeId) -> frozenset[Environment]:
        """The minimal environments under which *node* holds."""
        return frozenset(self._labels.get(node, ()))

    def holds_in(self, node: NodeId, environment: Iterable[NodeId]) -> bool:
        """Does *node* hold in the context of *environment*?"""
        context = frozenset(environment)
        return any(env <= context for env in self._labels.get(node, ()))

    def context(self, environment: Iterable[NodeId]) -> frozenset[NodeId]:
        """Every node holding under *environment* (de Kleer's context)."""
        context = frozenset(environment)
        return frozenset(
            node
            for node, label in self._labels.items()
            if any(env <= context for env in label)
        )

    def is_nogood(self, environment: Iterable[NodeId]) -> bool:
        context = frozenset(environment)
        return any(nogood <= context for nogood in self._nogoods)

    # ------------------------------------------------------------------
    # Label propagation
    # ------------------------------------------------------------------

    def _add_environments(
        self, node: NodeId, environments: set[Environment]
    ) -> None:
        environments = {
            env
            for env in environments
            if not any(nogood <= env for nogood in self._nogoods)
        }
        label = self._labels[node]
        fresh = {
            env
            for env in environments
            if not any(existing <= env for existing in label)
        }
        if not fresh:
            return
        self._labels[node] = minimize(label | fresh)
        for justification in self._consumers.get(node, ()):
            self._propagate(justification)

    def _propagate(self, justification: ATMSJustification) -> None:
        """Recompute the environments *justification* contributes."""
        combined: set[Environment] = {frozenset()}
        for antecedent in justification.antecedents:
            label = self._labels.get(antecedent, set())
            if not label:
                return  # some antecedent never holds: nothing to add
            combined = {
                env | antecedent_env
                for env in combined
                for antecedent_env in label
            }
            combined = minimize(combined)
        self._add_environments(justification.consequent, combined)

    def __repr__(self) -> str:
        return (
            f"ATMS({len(self._labels)} nodes, "
            f"{len(self._assumptions)} assumptions, "
            f"{len(self._justifications)} justifications, "
            f"{len(self._nogoods)} nogoods)"
        )
