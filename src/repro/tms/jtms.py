"""A justification-based truth maintenance system (Doyle 1979).

The paper positions its supports against Doyle's JTMS: "In [D] the latter
type of supports is used" — full justification structures rather than the
one-level rule pointers of section 5.1. This module implements the JTMS the
comparison refers to, and :mod:`repro.tms.bridge` shows that the standard
model of a stratified database is exactly the (unique) well-founded
labelling of its ground justification network.

A :class:`Justification` supports a node when every node of its *in-list*
is IN and every node of its *out-list* is OUT. A labelling is *admissible*
when a node is IN iff some justification supports it, and *well-founded*
when the IN nodes admit an order in which each node's supporting
justification only uses earlier IN nodes — no mutual support.

Labelling strategy: nodes are assigned levels by the same SCC analysis that
stratifies a logic program (out-list edges must leave their SCC, mirroring
"no recursion through negation"); levels are then labelled bottom-up, each
level by a monotone in-list fixpoint. For such *stratified networks* the
well-founded labelling exists and is unique. Networks with an out-list edge
inside a cycle (odd loops, unstable networks) raise
:class:`NonStratifiedNetworkError` — Doyle resolves those with heuristic
backtracking, which is out of scope here and irrelevant to the bridge.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

NodeId = Hashable


class NonStratifiedNetworkError(Exception):
    """The justification network has an out-list edge inside a cycle."""


class Justification:
    """A reason to believe *consequent*: in-list all IN, out-list all OUT."""

    __slots__ = ("consequent", "in_list", "out_list", "informant")

    def __init__(
        self,
        consequent: NodeId,
        in_list: Iterable[NodeId] = (),
        out_list: Iterable[NodeId] = (),
        informant: object = None,
    ):
        self.consequent = consequent
        self.in_list = frozenset(in_list)
        self.out_list = frozenset(out_list)
        self.informant = informant

    def is_premise(self) -> bool:
        """A justification with empty lists supports unconditionally."""
        return not self.in_list and not self.out_list

    def __repr__(self) -> str:
        return (
            f"Justification({self.consequent!r}, "
            f"in={sorted(map(repr, self.in_list))}, "
            f"out={sorted(map(repr, self.out_list))})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Justification)
            and other.consequent == self.consequent
            and other.in_list == self.in_list
            and other.out_list == self.out_list
        )

    def __hash__(self) -> int:
        return hash((self.consequent, self.in_list, self.out_list))


class JTMS:
    """Nodes, justifications and well-founded IN/OUT labelling.

    Labels are recomputed lazily: structural changes mark the network dirty
    and the next label query relabels it.
    """

    def __init__(self):
        self._justifications: dict[NodeId, set[Justification]] = {}
        self._in: set[NodeId] = set()
        self._support: dict[NodeId, Justification] = {}
        self._dirty = False

    # ------------------------------------------------------------------
    # Network construction
    # ------------------------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        if node not in self._justifications:
            self._justifications[node] = set()
            self._dirty = True

    def nodes(self) -> frozenset[NodeId]:
        return frozenset(self._justifications)

    def justify(
        self,
        consequent: NodeId,
        in_list: Iterable[NodeId] = (),
        out_list: Iterable[NodeId] = (),
        informant: object = None,
    ) -> Justification:
        """Install a justification for *consequent*."""
        justification = Justification(consequent, in_list, out_list, informant)
        self.add_node(consequent)
        for node in justification.in_list | justification.out_list:
            self.add_node(node)
        if justification not in self._justifications[consequent]:
            self._justifications[consequent].add(justification)
            self._dirty = True
        return justification

    def premise(self, node: NodeId, informant: object = None) -> Justification:
        """Install an unconditional justification for *node*."""
        return self.justify(node, informant=informant)

    def retract(self, justification: Justification) -> None:
        """Remove a justification; labels refresh on the next query."""
        existing = self._justifications.get(justification.consequent)
        if existing and justification in existing:
            existing.discard(justification)
            self._dirty = True

    def justifications_of(self, node: NodeId) -> frozenset[Justification]:
        return frozenset(self._justifications.get(node, ()))

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------

    def is_in(self, node: NodeId) -> bool:
        self._ensure_labelled()
        return node in self._in

    def is_out(self, node: NodeId) -> bool:
        return not self.is_in(node)

    def in_nodes(self) -> frozenset[NodeId]:
        self._ensure_labelled()
        return frozenset(self._in)

    def supporting_justification(
        self, node: NodeId
    ) -> Optional[Justification]:
        """The justification supporting an IN node (None for OUT nodes)."""
        self._ensure_labelled()
        return self._support.get(node)

    def well_founded_support_chain(self, node: NodeId) -> list[NodeId]:
        """The IN nodes reachable through supporting justifications.

        Doyle's non-circular argument for believing *node*: follow each
        node's supporting justification through its in-list, recursively.
        """
        self._ensure_labelled()
        chain: list[NodeId] = []
        stack = [node]
        visited: set[NodeId] = set()
        while stack:
            current = stack.pop()
            if current in visited or current not in self._in:
                continue
            visited.add(current)
            chain.append(current)
            support = self._support.get(current)
            if support is not None:
                stack.extend(support.in_list)
        return chain

    # ------------------------------------------------------------------
    # Well-founded labelling
    # ------------------------------------------------------------------

    def _sccs(self) -> list[frozenset[NodeId]]:
        """SCCs of the node dependency graph, dependencies first.

        A node depends on every node of every in/out list of its
        justifications. Iterative Tarjan, deterministic via repr order.
        """
        successors: dict[NodeId, list[NodeId]] = {}
        for node, justifications in self._justifications.items():
            deps: set[NodeId] = set()
            for justification in justifications:
                deps |= justification.in_list
                deps |= justification.out_list
            successors[node] = sorted(deps, key=repr)

        index_counter = 0
        indexes: dict[NodeId, int] = {}
        lowlinks: dict[NodeId, int] = {}
        on_stack: set[NodeId] = set()
        stack: list[NodeId] = []
        result: list[frozenset[NodeId]] = []
        for root in sorted(self._justifications, key=repr):
            if root in indexes:
                continue
            work: list[tuple[NodeId, Iterator[NodeId]]] = [
                (root, iter(successors[root]))
            ]
            indexes[root] = lowlinks[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in indexes:
                        indexes[child] = lowlinks[child] = index_counter
                        index_counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(successors[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlinks[node] = min(lowlinks[node], indexes[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indexes[node]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    result.append(frozenset(component))
        return result

    def _levels(self) -> dict[NodeId, int]:
        """Level of each node; out-list edges must go strictly down."""
        sccs = self._sccs()
        component_of: dict[NodeId, int] = {}
        for i, component in enumerate(sccs):
            for node in component:
                component_of[node] = i
        level_of_component = [0] * len(sccs)
        for i, component in enumerate(sccs):
            level = 0
            for node in component:
                for justification in self._justifications[node]:
                    for dep in justification.in_list:
                        j = component_of[dep]
                        if j != i:
                            level = max(level, level_of_component[j])
                    for dep in justification.out_list:
                        j = component_of[dep]
                        if j == i:
                            raise NonStratifiedNetworkError(
                                f"out-list edge {node!r} -> {dep!r} lies on "
                                "a cycle; the well-founded labelling is not "
                                "defined"
                            )
                        level = max(level, level_of_component[j] + 1)
            level_of_component[i] = level
        return {
            node: level_of_component[component_of[node]]
            for node in self._justifications
        }

    def _ensure_labelled(self) -> None:
        if not self._dirty:
            return
        levels = self._levels()
        self._in.clear()
        self._support.clear()
        by_level: dict[int, list[NodeId]] = {}
        for node, level in levels.items():
            by_level.setdefault(level, []).append(node)
        for level in sorted(by_level):
            # Within a level only in-list edges remain (out-lists point
            # strictly down, already settled): a monotone fixpoint.
            pending = by_level[level]
            changed = True
            while changed:
                changed = False
                for node in pending:
                    if node in self._in:
                        continue
                    for justification in self._justifications[node]:
                        holds = all(
                            dep in self._in for dep in justification.in_list
                        ) and all(
                            dep not in self._in
                            for dep in justification.out_list
                        )
                        if holds:
                            self._in.add(node)
                            self._support[node] = justification
                            changed = True
                            break
        self._dirty = False

    def relabel(self) -> None:
        """Force an immediate relabelling."""
        self._dirty = True
        self._ensure_labelled()

    def __repr__(self) -> str:
        total = sum(len(js) for js in self._justifications.values())
        return (
            f"JTMS({len(self._justifications)} nodes, {total} justifications)"
        )
