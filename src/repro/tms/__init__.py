"""Belief revision substrate: Doyle's JTMS, de Kleer's ATMS, and the bridge
mapping stratified databases onto them (the paper's framing, section 1/6).
"""

from .atms import ATMS, ATMSJustification, Environment, minimize
from .bridge import (
    GroundInstance,
    absent,
    ground_instances,
    model_context,
    positive_envelope,
    standard_model_via_jtms,
    to_atms,
    to_jtms,
)
from .jtms import JTMS, Justification, NonStratifiedNetworkError

__all__ = [
    "ATMS",
    "ATMSJustification",
    "Environment",
    "GroundInstance",
    "JTMS",
    "Justification",
    "NonStratifiedNetworkError",
    "absent",
    "ground_instances",
    "minimize",
    "model_context",
    "positive_envelope",
    "standard_model_via_jtms",
    "to_atms",
    "to_jtms",
]
