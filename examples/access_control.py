#!/usr/bin/env python3
"""Default-deny access control with transactional integrity.

A policy database where ``allowed`` is derived through role inheritance
and revoked through stratified negation — the "if so far it cannot be
confirmed" reading of negative hypotheses from the paper's introduction.
Maintenance keeps the materialised permission set current as grants and
revocations arrive; denial constraints guard invariants transactionally.

Run:  python examples/access_control.py
"""

from repro import CascadeEngine
from repro.constraints import ConstraintViolation, Transaction
from repro.datalog import Atom

POLICY = """
% roles and memberships
subrole(editor, admin).      % editors inherit from admins? no: admins ⊇ editors
member(alice, admin).
member(bob, editor).
member(carol, viewer).

% grants per role
grant(admin, settings).
grant(editor, articles).
grant(viewer, articles).

% inheritance and the default-deny rule
role_of(U, R) :- member(U, R).
role_of(U, S) :- role_of(U, R), subrole(R, S).
granted(U, X) :- role_of(U, R), grant(R, X).
allowed(U, X) :- granted(U, X), not revoked(U, X).
"""


def permissions(engine, user):
    return sorted(
        f.args[1] for f in engine.model.facts_of("allowed") if f.args[0] == user
    )


def main():
    engine = CascadeEngine(POLICY)
    print("initial permissions:")
    for user in ("alice", "bob", "carol"):
        print(f"  {user}: {permissions(engine, user)}")

    print("\n--- revoke bob's access to articles ---")
    result = engine.insert_fact("revoked(bob, articles)")
    print(f"  {result.summary()}")
    print(f"  bob: {permissions(engine, 'bob')}")

    print("\n--- new grant to viewers ---")
    result = engine.insert_fact("grant(viewer, comments)")
    print(f"  {result.summary()}")
    print(f"  carol: {permissions(engine, 'carol')}")

    print("\n--- lift bob's revocation ---")
    result = engine.delete_fact("revoked(bob, articles)")
    print(f"  {result.summary()}")
    print(f"  bob: {permissions(engine, 'bob')}")

    # Invariant: nobody may hold settings access while suspended.
    print("\n--- transactional constraint: suspended users lose settings ---")
    guard = ":- allowed(U, settings), suspended(U)."
    try:
        with Transaction(engine, [guard]) as txn:
            txn.insert_fact(Atom("suspended", ("alice",)))
        print("  committed (unexpected)")
    except ConstraintViolation as violation:
        print(f"  rolled back: {violation}")
    print(f"  alice still allowed: {permissions(engine, 'alice')}")
    print(f"  suspended asserted: "
          f"{engine.db.is_asserted(Atom('suspended', ('alice',)))}")

    # Revoking first makes the same suspension legal.
    with Transaction(engine, [guard]) as txn:
        txn.insert_fact(Atom("revoked", ("alice", "settings")))
        txn.insert_fact(Atom("suspended", ("alice",)))
    print(f"\n  after revoke+suspend transaction: "
          f"alice: {permissions(engine, 'alice')}")
    print(f"  maintained model consistent: {engine.is_consistent()}")


if __name__ == "__main__":
    main()
