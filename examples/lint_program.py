#!/usr/bin/env python3
"""Static analysis walkthrough: diagnostics, witnesses, independence.

Runs the ``repro.analysis`` analyzer over a deliberately defective program
and prints every finding (code, position, hint), shows the negative-cycle
witness a non-stratifiable program produces, then builds the
revision-independence report for a two-component program — the static
foundation for sharding concurrent updates.

Run:  python examples/lint_program.py
"""

from repro.analysis import analyze_source, independence_report

# One defect per diagnostic class the analyzer knows about.
DEFECTIVE = """
% DL001: Y in the head never occurs in a positive body literal.
route(X, Y) :- node(X).

% DL003: node used with arity 2 after arity 1 above.
node(a, b).
node(c).

% DL004/DL005: `nod` and `blocked` are never asserted or concluded —
% the positive literal can never hold, the negated one is vacuously true.
open(X) :- nod(X), not blocked(X).

% DL007: singleton variable W (occurs once; likely a typo for V).
pair(V, V2) :- node(V), node(V2), extra(W).

% DL008: duplicate of the rule above, up to variable renaming.
pair(A, B) :- node(A), node(B), extra(C).

% DL010: the two body groups share no variable — a cross product.
combo(X, Y) :- node(X), extra(Y).

extra(a).
"""

NON_STRATIFIABLE = """
sleeps(X) :- person(X), not works(X).
works(X) :- person(X), not sleeps(X).
person(ann).
"""

# Two relation families that never touch: updates to one provably
# commute with updates to the other.
TWO_SHARDS = """
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
edge(a, b).

allowed(U) :- user(U), not banned(U).
user(ann).
banned(bob).
"""


def main() -> None:
    print("== defective program ==")
    report = analyze_source(DEFECTIVE)
    print(report.render("defective.dl"))

    print("\n== non-stratifiable program: the witness path ==")
    report = analyze_source(NON_STRATIFIABLE)
    for finding in report.errors:
        print(finding.render("cycle.dl"))

    print("\n== revision independence ==")
    independence = independence_report(TWO_SHARDS)
    print(independence.summary())
    print(
        "updates to edge and banned commute:",
        independence.commutes("edge", "banned"),
    )
    print(
        "updates to edge and reach commute:",
        independence.commutes("edge", "reach"),
    )


if __name__ == "__main__":
    main()
