#!/usr/bin/env python3
"""The title of the paper, executed: maintenance as belief revision.

Grounds the MEET database into (a) a Doyle-style JTMS — whose well-founded
labelling is exactly the standard model — and (b) a de Kleer-style ATMS —
whose labels enumerate exactly the fact-level supports of section 5.2.
Then revises beliefs the TMS way and the database way and watches them
agree.

Run:  python examples/belief_revision_tms.py
"""

from repro import FactLevelEngine, compute_model, parse_fact
from repro.tms import absent, to_atms, to_jtms
from repro.workloads.paper import meet


def main():
    program = meet(l=3)
    model = compute_model(program)

    print("MEET database (Example 4): ground justification network")
    jtms = to_jtms(program)
    labelled = jtms.in_nodes()
    print(f"  JTMS IN-nodes == M(P): {labelled == model.as_set()}")
    print(f"  belief set size: {len(labelled)}")

    pc_paper = parse_fact("accepted(1)")
    support = jtms.supporting_justification(pc_paper)
    print(f"\n  why believe {pc_paper}?")
    print(f"    supporting justification: {support.informant}")
    chain = jtms.well_founded_support_chain(pc_paper)
    print(f"    non-circular argument: {' <- '.join(map(str, chain))}")

    print("\nassumption-based view (de Kleer): every reason at once")
    atms = to_atms(program)
    for environment in sorted(
        atms.label(pc_paper), key=lambda env: sorted(map(repr, env))
    ):
        rendered = sorted(
            str(n) if hasattr(n, "relation") else f"absent[{n[1]}]"
            for n in environment
        )
        print(f"  environment: {{{', '.join(rendered)}}}")
    print("  (the two environments are the two deductions the sets-of-sets")
    print("   solution of section 4.3 keeps — at fact granularity)")

    print("\nbelief revision, two ways: learn rejected(1)")
    jtms.premise(parse_fact("rejected(1)"))
    engine = FactLevelEngine(program)
    engine.insert_fact("rejected(1)")
    agree = jtms.in_nodes() == engine.model.as_set()
    print(f"  JTMS relabelling == fact-level maintenance: {agree}")
    print(f"  {pc_paper} still believed: {jtms.is_in(pc_paper)}"
          "  (the committee deduction survives)")

    # The ATMS never revises: the old context is simply no longer selected.
    context = atms.context(
        {
            node
            for node in atms.assumptions()
            if not isinstance(node, tuple) or node[1] != parse_fact("rejected(1)")
        }
        - {absent(parse_fact("rejected(1)"))}
    )
    print(f"  ATMS: moved to a context without absent[rejected(1)]; "
          f"{pc_paper} holds there: {pc_paper in context}")


if __name__ == "__main__":
    main()
