#!/usr/bin/env python3
"""Network monitoring: maintained unreachability alarms.

A monitoring database derives ``unreachable(x, y)`` — the alarms — through
stratified negation over the reachability closure. Link flaps are exactly
the non-monotonic updates the paper studies: a link *insertion* retracts
alarms, a link *deletion* raises them. The cascade engine maintains the
alarm set incrementally; a full recomputation engine serves as the
comparison point.

Run:  python examples/graph_reachability.py
"""

import time

from repro import CascadeEngine, RecomputeEngine
from repro.workloads.families import reachability
from repro.workloads.updates import asserted_facts


def alarms(engine):
    return {f.args for f in engine.model.facts_of("unreachable")}


def main():
    program = reachability(nodes=12, edge_probability=0.16, seed=7)
    engine = CascadeEngine(program)
    print(f"network: 12 nodes, {len(asserted_facts(program, ['link']))} links")
    print(f"initial alarms (unreachable pairs): {len(alarms(engine))}")

    links = asserted_facts(program, ["link"])
    down = links[0]
    print(f"\n--- link DOWN: {down} ---")
    result = engine.delete_fact(down)
    print(f"  update: {result.summary()}")
    raised = {f for f in result.net_added if f.relation == "unreachable"}
    print(f"  alarms raised: {len(raised)}")

    print(f"\n--- link UP: {down} ---")
    result = engine.insert_fact(down)
    print(f"  update: {result.summary()}")
    cleared = {f for f in result.net_removed if f.relation == "unreachable"}
    print(f"  alarms cleared: {len(cleared)}")

    # a brand-new link may clear alarms that existed from the start
    from repro.datalog import Atom

    existing = {link.args for link in links}
    new_link = next(
        (f"n{i}", f"n{j}")
        for i in range(12)
        for j in range(12)
        if i != j and (f"n{i}", f"n{j}") not in existing
        and (f"n{i}", f"n{j}") in alarms(engine)
    )
    print(f"\n--- new link: link{new_link} ---")
    result = engine.insert_fact(Atom("link", new_link))
    print(f"  update: {result.summary()}")

    # maintained vs recomputed, timed over a flap burst
    flaps = links[:8]
    started = time.perf_counter()
    for link in flaps:
        engine.delete_fact(link)
        engine.insert_fact(link)
    incremental_s = time.perf_counter() - started

    recompute = RecomputeEngine(engine.db.program)
    started = time.perf_counter()
    for link in flaps:
        recompute.delete_fact(link)
        recompute.insert_fact(link)
    recompute_s = time.perf_counter() - started

    assert engine.model == recompute.model
    print(f"\n16 flap updates: cascade {incremental_s * 1000:.1f} ms, "
          f"recompute {recompute_s * 1000:.1f} ms "
          f"({recompute_s / incremental_s:.1f}x)")
    print(f"final alarms: {len(alarms(engine))}; models agree: True")


if __name__ == "__main__":
    main()
