#!/usr/bin/env python3
"""The paper's running story: conference reviewing, solution by solution.

Replays Examples 1-4 and the section 5.1 example, showing for each one
which maintenance solution migrates which facts — the narrative arc of the
paper, executable.

Run:  python examples/conference_review.py
"""

from repro import create_engine
from repro.bench.reporting import print_table
from repro.datalog import parse_fact
from repro.workloads.paper import cascade_example, conf, congress, meet


def example_1():
    print("Example 1 (CONF): an asserted late acceptance")
    print("  accepted(4) is asserted, not derived; inserting rejected(4)")
    print("  must not disturb it — but the static solution can only see")
    print("  the dependency graph, in which every accepted fact is at risk.")
    late = parse_fact("accepted(4)")
    rows = []
    for name in ("static", "dynamic", "cascade"):
        engine = create_engine(name, conf(l=3))
        result = engine.insert_fact("rejected(4)")
        rows.append([name, len(result.migrated), late in result.migrated])
    print_table(["engine", "migrated", "late_acceptance_migrated"], rows)


def example_3():
    print("Example 3 (CONGRESS): keep the smaller support")
    print("  accepted(2) has two deductions; the one through submitted(2)")
    print("  alone survives any rejection.")
    from repro import DynamicEngine

    rows = []
    for keep_smaller in (True, False):
        engine = DynamicEngine(congress(l=2), keep_smaller=keep_smaller)
        result = engine.insert_fact("rejected(2)")
        rows.append(
            [
                "keep smaller" if keep_smaller else "keep first",
                parse_fact("accepted(2)") in result.migrated,
            ]
        )
    print_table(["support policy", "accepted(2) migrated"], rows)


def example_4():
    print("Example 4 (MEET): a paper authored by a committee member")
    print("  accepted(1) holds for two independent reasons; one support")
    print("  per fact forgets one of them.")
    pc_paper = parse_fact("accepted(1)")
    rows = []
    for name in ("dynamic", "setofsets", "cascade", "factlevel"):
        engine = create_engine(name, meet(l=3))
        result = engine.insert_fact("rejected(1)")
        rows.append(
            [name, pc_paper in result.removed, pc_paper in engine.model]
        )
    print_table(["engine", "was_removed", "still_accepted"], rows)


def section_5_1():
    print("Section 5.1: the cascade effect")
    print("  P = { r :- p.  q :- r.  q :- not p. }, then INSERT p:")
    print("  q loses its old deduction but gains a new one in the same")
    print("  update — processing strata in order can notice in time.")
    q = parse_fact("q")
    rows = []
    for name in ("setofsets", "cascade-paper", "cascade"):
        engine = create_engine(name, cascade_example())
        result = engine.insert_fact("p")
        rows.append([name, q in result.removed, q in result.migrated])
    print_table(["engine", "q_removed", "q_migrated"], rows)


def main():
    example_1()
    example_3()
    example_4()
    section_5_1()
    print("Every engine above finishes on the exact standard model M(P');")
    print("they differ only in how much work (migration) the route took.")


if __name__ == "__main__":
    main()
