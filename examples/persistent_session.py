#!/usr/bin/env python3
"""Persistent sessions: crash recovery, transactions and time travel.

The engines of :mod:`repro.core` revise a belief state in memory; the
:mod:`repro.store` package makes that revision history durable. This
walkthrough runs a review database inside a store directory, kills the
"process" mid-flight, reopens the store (snapshot + journal-tail replay),
rolls back a failing batch, and time-travels the belief state.

Run:  python examples/persistent_session.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import open_store
from repro.datalog.errors import UpdateError

PODS = """
% the PODS review database of section 3
submitted(1). submitted(2). submitted(3). submitted(4). submitted(5).
accepted(2). accepted(4).
rejected(X) :- not accepted(X), submitted(X).
"""


def main():
    directory = Path(tempfile.mkdtemp()) / "reviews"

    # ------------------------------------------------------------------
    # Session 1: create the store, make some revisions, checkpoint.
    # ------------------------------------------------------------------
    store = open_store(directory, program=PODS, engine="cascade")
    print(f"created {store}")

    store.insert_fact("accepted(1)")          # revision 1
    store.insert_rule(
        "notify(X) :- rejected(X), not appealed(X)."
    )                                         # revision 2
    store.snapshot()                          # durable checkpoint
    store.insert_fact("appealed(3)")          # revision 3: journal tail
    print(f"revision {store.revision}, model has {len(store.model)} facts")

    # A transaction that fails mid-batch leaves no trace: deleting a
    # never-asserted fact raises, and the whole batch rolls back.
    try:
        with store.transaction():
            store.insert_fact("submitted(6)")
            store.delete_fact("accepted(99)")     # not asserted -> raises
    except UpdateError as error:
        print(f"transaction rolled back: {error}")
    assert not store.model.contains("submitted", (6,))
    assert store.head == 3  # nothing extra was journaled

    # ... and a successful batch is one atomic revision.
    with store.transaction():
        store.insert_fact("submitted(6)")
        store.insert_fact("accepted(6)")
    print(f"committed batch as revision {store.revision}")

    head_model = store.model.as_set()
    del store  # simulate a crash: no close, no final snapshot

    # ------------------------------------------------------------------
    # Session 2: reopen. The store restores the newest snapshot and
    # replays the journal tail — no from-scratch rebuild.
    # ------------------------------------------------------------------
    store = open_store(directory)
    print(f"\nreopened {store}")
    assert store.model.as_set() == head_model
    print("recovered model matches the pre-crash state")

    # ------------------------------------------------------------------
    # Time travel: every belief state in the history is addressable.
    # ------------------------------------------------------------------
    store.undo(2)  # back before the appeal and the committed batch
    print(f"\nafter undo(2): revision {store.revision}")
    assert not store.model.contains("appealed", (3,))
    assert store.model.contains("notify", (3,))  # rule still in force

    store.redo(2)  # ... and forward again
    assert store.model.as_set() == head_model
    print(f"after redo(2): revision {store.revision}, model restored")

    print("\nrevision history:")
    for line in store.log():
        print(" ", line)

    store.close()
    shutil.rmtree(directory.parent)


if __name__ == "__main__":
    main()
