#!/usr/bin/env python3
"""Admitting a transaction batch through the commutation certifier.

A payments ledger shards cleanly by account key: deposits, voids and
withdrawals on *different* accounts never interact, but the relation-level
independence report cannot see that — every transaction writes ``deposit``
or ``voided``, so relation-wise everything collides with everything.

The argument-level certifier (:mod:`repro.analysis.update_cones`)
abstracts each ground update as a binding pattern and pushes the account
key through the rule bodies: ``deposit(acct1, _)`` only ever reaches
``posted(acct1, _)``, ``active(acct1)``, ``alert(acct1)``. Cross-key
transactions get pattern-disjoint cones and provably commute; same-key
transactions conflict, and the conflict graph says *why* — with the
dependency path and the DL011/DL013 diagnostics the static analyzer
reports.

Run:  python examples/schedule_demo.py
"""

from repro.analysis import (
    ConflictGraph,
    UpdateConeAnalyzer,
    parse_transactions,
)
from repro.workloads import sharded_by_key

# Three transactions arrive at the scheduler: `a` and `c` both touch
# account acct1 (and `c` flips a negated relation), `b` is on acct2.
BATCH = """
a: +deposit(acct1, 50). -voided(acct1, 0).
b: +deposit(acct2, 75).
c: +reviewed(acct1).
"""


def main() -> None:
    program = sharded_by_key()
    analyzer = UpdateConeAnalyzer(program)
    batch = parse_transactions(BATCH)
    graph = ConflictGraph.of_batch(analyzer, batch)

    # The cones behind the verdicts: the account key survives the joins.
    cones = analyzer.cones("deposit(acct1, 50)")
    print("write cone of +deposit(acct1, 50):")
    for relation, patterns in sorted(cones.writes.to_dict().items()):
        print(f"  {relation}: {', '.join(patterns)}")
    print()

    # The admission decision: who can run concurrently with whom.
    print(graph.summary())
    print()

    for first, second in (("a", "b"), ("a", "c")):
        if graph.commutes(first, second):
            print(f"{first} and {second} commute: schedule them together.")
        else:
            arc = graph.conflicts(first, second)[0]
            print(f"{first} and {second} conflict: {arc.render()}")
    print()

    # The same verdicts as analyzer diagnostics (DL011-DL013).
    for diagnostic in graph.diagnostics():
        print(diagnostic.render())


if __name__ == "__main__":
    main()
