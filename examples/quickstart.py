#!/usr/bin/env python3
"""Quickstart: a stratified database, its standard model, and maintenance.

Builds the paper's PODS database (section 3), computes the standard model
M(P), and walks through the four update operations with the cascade engine
(section 5.1, the solution the paper recommends), showing what each update
removed, added, and migrated.

Run:  python examples/quickstart.py
"""

from repro import CascadeEngine, RecomputeEngine

PODS = """
% the PODS review database of section 3
submitted(1). submitted(2). submitted(3). submitted(4). submitted(5).
accepted(2). accepted(4).
rejected(X) :- not accepted(X), submitted(X).
"""


def show(title, engine):
    print(f"\n{title}")
    print("-" * len(title))
    for line in engine.model.pretty().splitlines():
        print(" ", line)


def main():
    engine = CascadeEngine(PODS)
    show("M(PODS) — the standard model", engine)

    # 1. Fact insertion: accepting paper 1 must retract its rejection.
    result = engine.insert_fact("accepted(1)")
    print("\nINSERT accepted(1):", result.summary())
    assert not engine.model.contains("rejected", (1,))

    # 2. Fact deletion: un-accepting paper 4 re-derives its rejection.
    result = engine.delete_fact("accepted(4)")
    print("DELETE accepted(4):", result.summary())
    assert engine.model.contains("rejected", (4,))

    # 3. Rule insertion must keep the database stratified (checked), and
    #    the new rule's consequences appear incrementally.
    result = engine.insert_rule(
        "notify(X) :- rejected(X), not appealed(X)."
    )
    print("INSERT notify rule:", result.summary())

    # 4. Rule deletion withdraws exactly its consequences.
    result = engine.delete_rule(
        "notify(X) :- rejected(X), not appealed(X)."
    )
    print("DELETE notify rule:", result.summary())

    # The maintained model always equals a from-scratch recomputation:
    oracle = RecomputeEngine(engine.db.program)
    assert engine.model == oracle.model
    print("\nmaintained model == recomputed M(P'):", True)

    show("final model", engine)
    print(
        f"\ntotals: {engine.totals.updates} updates, "
        f"{engine.totals.migrated} migrated facts, "
        f"{engine.totals.duration_s * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
