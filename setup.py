"""Legacy shim so `pip install -e .` works without network/wheel support."""

from setuptools import setup

setup()
