"""E19 — telemetry overhead and the estimate-vs-actual plan records.

The observability layer (``repro.obs``) promises two things at once:

* **E19a (disabled overhead)** — with telemetry off, the instrumented
  hot paths must cost what the uninstrumented ones did. Every site pays
  one ``OBS.enabled`` attribute lookup (or a no-op context manager at
  phase granularity), and the plan executor takes its observer-free
  branch; on the E17a skewed-star saturation the wall-clock overhead
  must stay within scheduler noise (<= ~3%). The comparison runs with a
  registry *instantiated but disabled* — the state a process is in after
  `telemetry on` / `telemetry off` — which is strictly no cheaper than
  the never-enabled state.

* **E19b (enabled fidelity)** — with telemetry on, one maintenance
  update over a join-heavy clause must produce a trace whose per-plan-
  step records carry both the ``estimated`` and the actual (``rows``)
  matched-row counts for *every* step of the clause, and the registry
  must expose the update counters in the Prometheus text format. The
  trace and the exposition are written into the gitignored artifact
  directory (``benchmarks/out/bench-e19-trace.json`` /
  ``benchmarks/out/bench-e19-metrics.txt``) so CI archives a real
  artifact, not just a pass/fail bit — and the working tree stays clean.

The workload is E17a's skewed star — the join the planner instrumentation
is most interesting on — driven both through raw saturation (E19a) and a
maintained engine update (E19b).
"""

import json
import time

from repro.bench.reporting import artifact_path, print_table
from repro.core.registry import create_engine
from repro.datalog.atoms import Atom, fact
from repro.datalog.builder import ProgramBuilder
from repro.datalog.evaluation import semi_naive_saturate
from repro.datalog.model import Model
from repro.datalog.plan import Planner
from repro.obs import OBS, telemetry

TRIPLE_ROWS = 20_000
A_BUCKETS = 198
B_BUCKETS = 211
PROBES = 32
REPEATS = 7
OVERHEAD_CEILING = 1.03


def _star_rules():
    builder = ProgramBuilder()
    (
        builder.rule("hit", ("C",))
        .pos("triple", "A", "B", "C")
        .pos("sa", "A")
        .pos("sb", "B")
    )
    return builder.build().rules


def _star_model(rows: int = TRIPLE_ROWS) -> Model:
    model = Model()
    for i in range(rows):
        a = 1 + (i % A_BUCKETS)
        b = (i // A_BUCKETS + a * 17) % B_BUCKETS
        model.add(Atom("triple", (a, b, i)))
    for i in range(PROBES):
        model.add(Atom("sa", (1 + (i * 5) % A_BUCKETS,)))
        model.add(Atom("sb", ((i * 11) % B_BUCKETS,)))
    return model


def _saturate_once() -> float:
    model = _star_model()
    planner = Planner()
    started = time.perf_counter()
    semi_naive_saturate(_star_rules(), model, planner=planner)
    return time.perf_counter() - started


def test_e19a_disabled_overhead(benchmark):
    """Telemetry off must cost within noise of never-instrumented runs."""
    assert not OBS.enabled
    # Put the process in the worst disabled state: a registry exists (it
    # was enabled once), collection is off again.
    OBS.enable()
    OBS.disable()
    OBS.reset()

    # Interleave the measurements so clock drift and cache warmup hit
    # both sides equally; best-of-N absorbs scheduler hiccups.
    baseline = disabled = float("inf")
    for _ in range(REPEATS):
        baseline = min(baseline, _saturate_once())
        disabled = min(disabled, _saturate_once())
    ratio = disabled / baseline
    print_table(
        ["triple_rows", "baseline_s", "disabled_telemetry_s", "ratio"],
        [[TRIPLE_ROWS, baseline, disabled, ratio]],
        "E19a: disabled-telemetry overhead on the E17a skewed star",
    )
    # Both runs go through identical code (the observer-free plan branch),
    # so this guards the *structure* — no accidental always-on probe work.
    assert ratio <= OVERHEAD_CEILING, (
        f"disabled telemetry costs {ratio:.3f}x the baseline"
    )

    model = _star_model()
    benchmark(
        lambda: semi_naive_saturate(
            _star_rules(), model.copy(), planner=Planner()
        )
    )


def _engine_program(rows: int):
    builder = ProgramBuilder()
    (
        builder.rule("hit", ("C",))
        .pos("triple", "A", "B", "C")
        .pos("sa", "A")
        .pos("sb", "B")
    )
    for i in range(rows):
        a = 1 + (i % A_BUCKETS)
        b = (i // A_BUCKETS + a * 17) % B_BUCKETS
        builder.fact("triple", a, b, i)
    for i in range(1, PROBES):
        builder.fact("sa", 1 + (i * 5) % A_BUCKETS)
        builder.fact("sb", (i * 11) % B_BUCKETS)
    return builder.build()


def _collect_plan_events(span, into):
    into.extend(e for e in span.events if e.get("name") == "plan")
    for child in span.children:
        _collect_plan_events(child, into)


def test_e19b_enabled_trace_has_estimates_and_actuals():
    """One traced update records estimated AND actual rows per plan step."""
    engine = create_engine("cascade", _engine_program(rows=5_000))
    with telemetry():
        engine.insert_fact(fact("sa", 1))  # drives the 3-way join delta
        root = OBS.tracer.last
        exposition = OBS.exposition()
        chrome = OBS.tracer.chrome_events()

    plan_events = []
    _collect_plan_events(root, plan_events)
    join_events = [e for e in plan_events if "hit(" in e["clause"]]
    assert join_events, f"no plan record for the join rule in {plan_events}"
    checked = 0
    for event in join_events:
        assert len(event["steps"]) == 3  # triple, sa, sb — every step
        for step in event["steps"]:
            assert "estimated" in step, step
            assert "rows" in step, step
            assert step["estimated"] >= 0.0
            assert step["rows"] >= 0
            checked += 1
    print_table(
        ["join_plan_records", "steps_checked"],
        [[len(join_events), checked]],
        "E19b: estimate-vs-actual coverage of the join-heavy clause",
    )

    assert 'repro_updates_total{engine="cascade",operation="insert_fact"} 1' \
        in exposition
    with open(
        artifact_path("bench-e19-trace.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {"root": root.to_dict(), "traceEvents": chrome}, handle, indent=1
        )
    with open(
        artifact_path("bench-e19-metrics.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(exposition)
