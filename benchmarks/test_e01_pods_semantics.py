"""E1 — Section 3, the PODS database.

Paper claim: ``M(PODS') = M(PODS) \\ {rejected(m)} ∪ {accepted(m)}`` for an
insertion of ``accepted(m)``, and symmetrically for a deletion. Every engine
must realise exactly this net change; the benchmark times the insertion on
the paper's preferred (cascade) solution against full recomputation.
"""

from repro.bench.reporting import print_table
from repro.core.registry import SOUND_ENGINE_NAMES, create_engine
from repro.datalog.atoms import fact
from repro.workloads.paper import pods

L = 300
ACCEPTED = tuple(range(2, L, 3))


def test_e01_net_change_shape(benchmark):
    rows = []
    for name in SOUND_ENGINE_NAMES:
        engine = create_engine(name, pods(l=L, accepted=ACCEPTED))
        result = engine.insert_fact("accepted(1)")
        rows.append(
            [
                name,
                len(result.net_removed),
                len(result.net_added),
                len(result.migrated),
                "ok" if engine.is_consistent() else "DIVERGED",
            ]
        )
        assert result.net_removed == {fact("rejected", 1)}, name
        assert result.net_added == {fact("accepted", 1)}, name
    print_table(
        ["engine", "net_removed", "net_added", "migrated", "oracle"],
        rows,
        f"E1: INSERT accepted(1) into PODS(l={L})",
    )

    def insert_on_fresh_engine():
        engine = create_engine("cascade", pods(l=L, accepted=ACCEPTED))
        return engine.insert_fact("accepted(1)")

    benchmark(insert_on_fresh_engine)


def test_e01_deletion_shape(benchmark):
    rows = []
    for name in SOUND_ENGINE_NAMES:
        engine = create_engine(name, pods(l=L, accepted=ACCEPTED))
        result = engine.delete_fact("accepted(2)")
        rows.append(
            [
                name,
                len(result.net_removed),
                len(result.net_added),
                len(result.migrated),
                "ok" if engine.is_consistent() else "DIVERGED",
            ]
        )
        assert result.net_removed == {fact("accepted", 2)}, name
        assert result.net_added == {fact("rejected", 2)}, name
    print_table(
        ["engine", "net_removed", "net_added", "migrated", "oracle"],
        rows,
        f"E1: DELETE accepted(2) from PODS(l={L})",
    )

    engine = create_engine("cascade", pods(l=L, accepted=ACCEPTED))
    toggle = [True]

    def flip():
        if toggle[0]:
            engine.delete_fact("accepted(2)")
        else:
            engine.insert_fact("accepted(2)")
        toggle[0] = not toggle[0]

    benchmark(flip)
