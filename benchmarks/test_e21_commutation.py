"""E21 — the transaction commutation certifier: refinement and soundness.

PR 9 adds argument-level pattern cones (:mod:`repro.analysis.update_cones`)
on top of the relation-level independence report, a conflict-graph
scheduler (:mod:`repro.analysis.schedule`), and a differential commutation
fuzzer (:mod:`repro.analysis.fuzz`). Two claims are worth money and both
get a named CI guard:

* **E21a (refinement wins — CI guard)** — on the sharded-by-key ledger
  workload with one transaction per account key, the argument-level
  certifier must certify **strictly more** commuting transaction pairs
  than the relation-level report, at bounded analysis cost. The
  relation-level report sees every pair of transactions collide (they all
  write ``deposit``/``posted``/``active``); the pattern cones carry the
  account key through every join chain, so cross-key pairs provably
  commute. The guard pins the refinement ratio and a per-pair analysis
  budget, so a cone-precision regression (widening too early, dropping a
  carried key) fails loudly on its own.

* **E21b (soundness — CI guard)** — a bounded run of the differential
  fuzzer: every certified pair is replayed in both orders on checkpoints
  of every registered engine, with models compared strictly, rule-record
  tables checked as valid support covers, and undo probes landing back on
  the base model. Zero violations, and the run must actually exercise the
  refinement (at least one pattern-only certificate), so a vacuous pass
  cannot hide an unsound cone.
"""

import time

from repro.analysis import ConflictGraph, UpdateConeAnalyzer
from repro.analysis.fuzz import fuzz_commutation
from repro.bench.reporting import print_table
from repro.workloads import sharded_by_key
from repro.workloads.updates import keyed_transactions

ACCOUNTS = 12
DEPOSITS_PER_ACCOUNT = 3

#: E21a acceptance bar: the argument-level certifier must certify at
#: least this many times the relation-level count of commuting pairs on
#: the keyed ledger (relation level certifies none, so any win passes;
#: the floor is phrased as a count to survive a future relation-level
#: improvement).
PATTERN_EXTRA_PAIRS_FLOOR = 10
#: E21a cost bar: building the conflict graph, cones included, must stay
#: under this budget per transaction pair on the keyed ledger.
SECONDS_PER_PAIR_CEILING = 0.05

#: E21b bounds: small enough for CI, large enough that the refinement
#: demonstrably fires.
FUZZ_SEEDS = range(3)
FUZZ_PAIRS = 16


EDB = ("account", "deposit", "withdrawal", "voided", "whitelisted")
ARITIES = {
    "account": 1,
    "deposit": 2,
    "withdrawal": 2,
    "voided": 2,
    "whitelisted": 1,
}


def _keyed_batch():
    program = sharded_by_key(
        accounts=ACCOUNTS, deposits_per_account=DEPOSITS_PER_ACCOUNT
    )
    batch = keyed_transactions(program, EDB, ARITIES, seed=0)
    return program, batch


def _pairs(names):
    return [
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i + 1, len(names))
    ]


def test_e21a_argument_level_certifies_more(benchmark):
    program, batch = _keyed_batch()
    names = [name for name, _ in batch]

    def build():
        analyzer = UpdateConeAnalyzer(program)
        return analyzer, ConflictGraph.of_batch(analyzer, batch)

    started = time.perf_counter()
    analyzer, graph = build()
    build_seconds = time.perf_counter() - started

    pattern_commuting = sum(
        1 for a, b in _pairs(names) if graph.commutes(a, b)
    )

    # Relation-level verdict for the same batch: a pair commutes iff
    # every write/read relation combination clears the coarse report.
    report = analyzer.relation_report
    relations = {
        name: {fact.relation for _, fact in updates}
        for name, updates in batch
    }
    relation_commuting = sum(
        1
        for a, b in _pairs(names)
        if all(
            report.commutes(ra, rb)
            for ra in relations[a]
            for rb in relations[b]
        )
    )

    pair_count = len(_pairs(names))
    benchmark(lambda: ConflictGraph.of_batch(analyzer, batch))
    print_table(
        ["certifier", "commuting pairs", "build time"],
        [
            ["relation-level", relation_commuting, "-"],
            ["argument-level", pattern_commuting, f"{build_seconds:.3f}s"],
        ],
        title=(
            "E21a commutation refinement (keyed ledger, "
            f"{len(names)} transactions, {pair_count} pairs)"
        ),
    )

    assert (
        pattern_commuting
        >= relation_commuting + PATTERN_EXTRA_PAIRS_FLOOR
    ), (
        f"argument-level certified {pattern_commuting} pairs vs "
        f"{relation_commuting} relation-level: refinement floor "
        f"(+{PATTERN_EXTRA_PAIRS_FLOOR}) not met"
    )
    assert build_seconds / pair_count <= SECONDS_PER_PAIR_CEILING, (
        f"conflict graph cost {build_seconds / pair_count:.4f}s per pair "
        f"exceeds the {SECONDS_PER_PAIR_CEILING}s ceiling"
    )


def test_e21b_fuzzer_finds_no_unsound_certificates(benchmark):
    report = benchmark.pedantic(
        lambda: fuzz_commutation(FUZZ_SEEDS, pairs=FUZZ_PAIRS, rng_seed=0),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["programs", "pairs", "certified", "pattern-only", "replays",
         "violations"],
        [[
            report.programs,
            report.pairs_drawn,
            report.certified,
            report.certified_pattern_only,
            report.replays,
            len(report.violations),
        ]],
        title="E21b differential soundness fuzz",
    )
    assert report.ok, report.summary()
    assert report.certified_pattern_only > 0, (
        "fuzz run never exercised the argument-level refinement: "
        "soundness guard is vacuous"
    )
