"""E17 — statistics-driven planning vs. the PR 3 planner's guesses.

Extends E16: not a claim of the paper, but the engineering the paper's
delta-driven mechanism presumes. The PR 3 planner guessed — a flat
0.1-per-bound-column selectivity discount and single-column index
intersection. This experiment measures the three replacements on the
workloads the guesses get wrong:

* **E17a (skewed star, multi-bound probes)** — a wide relation probed on
  two bound columns at once. Single-column buckets are large (and one hub
  value is heavily skewed), but the *pair* distribution is sparse: the
  composite index answers in one dict lookup what the intersection path
  pays a bucket scan-and-filter for. ``Planner(estimator="heuristic",
  composite=False)`` is exactly the PR 3 planner; the acceptance bar is
  >= 2x.

* **E17b (skewed cardinalities)** — relation sizes the flat discount
  misreads: the heuristic's order joins two unrelated small relations
  into a cross product before touching the large one; real distinct
  counts see that the large relation is nearly unique per bound column
  and drive through it instead.

* **E17c (covered delta positions)** — a rule whose body relation is
  derived entirely within one semi-naive round. The cost-based
  delta-position choice proves every firing but the last is empty
  (the triangular restriction leaves nothing to join) and skips it.
  The skipped passes die at their first exclusion check, so on dense
  workloads the wall-clock saving is modest — the experiment pins down
  that the skip is *free* (parity or better) while eliminating the dead
  passes outright; the structural win grows with the number of covered
  self-join positions.

* **E17d (composite-index cardinality)** — the uniform-independence
  estimate ``|R| / Π distinct(c)`` misjudges correlated columns; once the
  composite index on a column combination exists, its key count is the
  *exact* distinct count of the combination, and
  ``Relation.estimated_matches`` uses it. On the E17a star the pair
  estimate tightens from an order of magnitude off to exact.

Every comparison also asserts the two configurations produce identical
results — speed must not buy semantics.
"""

import time

from repro.bench.reporting import print_table
from repro.datalog.atoms import Atom
from repro.datalog.builder import ProgramBuilder
from repro.datalog.evaluation import semi_naive_saturate
from repro.datalog.model import Model
from repro.datalog.plan import Planner


def _pr3_planner() -> Planner:
    """The PR 3 behaviour: flat discount, single-column intersection."""
    return Planner(estimator="heuristic", composite=False)


def _time_saturation(rules, make_model, make_planner, repeats=3):
    """Best-of-N wall clock, so a CI scheduling hiccup cannot fail E17."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        model = make_model()
        planner = make_planner()
        started = time.perf_counter()
        semi_naive_saturate(rules, model, planner=planner)
        best = min(best, time.perf_counter() - started)
        result = model
    return best, result


# ----------------------------------------------------------------------
# E17a: skewed star, multi-bound probes
# ----------------------------------------------------------------------

TRIPLE_ROWS = (20_000, 40_000)
A_BUCKETS = 198  # distinct cold values in column A
B_BUCKETS = 211  # distinct cold values in column B
HOT_A, HOT_B = 7, 13  # the hub pair: a quarter of the relation
PROBES = 32  # rows in each of the two driving filters


def _star_rules():
    builder = ProgramBuilder()
    (
        builder.rule("hit", ("C",))
        .pos("triple", "A", "B", "C")
        .pos("sa", "A")
        .pos("sb", "B")
    )
    return builder.build().rules


def _skewed_star_model(rows: int) -> Model:
    """A wide relation whose single-column buckets are big but whose
    (A, B) pairs are nearly unique — plus one heavily skewed hub pair.

    Intersecting single-column indexes scans a ~rows/200 bucket per probe
    to keep ~1 row; the composite (A, B) index returns that row in one
    lookup. The hub inflates the buckets it belongs to without ever being
    probed, the classic skew that makes per-column guesses worthless.
    """
    model = Model()
    hot = rows // 4
    for i in range(hot):
        model.add(Atom("triple", (HOT_A, HOT_B, i)))
    for i in range(hot, rows):
        a = 1 + (i % A_BUCKETS)
        if a == HOT_A:
            a = 0
        b = (i // A_BUCKETS + a * 17) % B_BUCKETS
        if b == HOT_B:
            b = B_BUCKETS
        model.add(Atom("triple", (a, b, i)))
    for i in range(PROBES):
        a = 1 + ((i * 5) % A_BUCKETS)
        model.add(Atom("sa", (0 if a == HOT_A else a,)))
        b = (i * 11) % B_BUCKETS
        model.add(Atom("sb", (B_BUCKETS if b == HOT_B else b,)))
    return model


def test_e17a_skewed_star_multi_bound(benchmark):
    """Composite probes + statistics must beat PR 3 by >= 2x."""
    rules = _star_rules()
    rows_out = []
    speedups = []
    for rows in TRIPLE_ROWS:
        pr3_s, pr3_model = _time_saturation(
            rules, lambda: _skewed_star_model(rows), _pr3_planner
        )
        stats_s, stats_model = _time_saturation(
            rules, lambda: _skewed_star_model(rows), Planner
        )
        assert stats_model == pr3_model
        speedup = pr3_s / stats_s
        speedups.append(speedup)
        rows_out.append([rows, pr3_s, stats_s, speedup])
    print_table(
        ["triple_rows", "pr3_planner_s", "stats_planner_s", "speedup"],
        rows_out,
        "E17a: skewed star, two-column probes (intersection vs composite)",
    )
    # Acceptance bar (ISSUE 4): >= 2x on the skewed star workload.
    assert max(speedups) >= 2.0

    model = _skewed_star_model(TRIPLE_ROWS[0])
    benchmark(
        lambda: semi_naive_saturate(rules, model.copy(), planner=Planner())
    )


# ----------------------------------------------------------------------
# E17b: skewed cardinalities mislead the flat discount
# ----------------------------------------------------------------------

LINK_ROWS = 20_000
A_ROWS = 200
B_ROWS = 50


def _cardinality_rules():
    builder = ProgramBuilder()
    (
        builder.rule("out", ("X", "Y"))
        .pos("a", "X")
        .pos("link", "X", "Y")
        .pos("b", "Y")
    )
    return builder.build().rules


def _cardinality_model() -> Model:
    model = Model()
    for i in range(A_ROWS):
        model.add(Atom("a", (i,)))
    for i in range(LINK_ROWS):
        # nearly unique per column: one row per X, Y == X
        model.add(Atom("link", (i, i)))
    for i in range(B_ROWS):
        model.add(Atom("b", (i * 4,)))
    return model


def test_e17b_skewed_cardinality_ordering(benchmark):
    """Real distinct counts avoid the cross product the heuristic builds."""
    rules = _cardinality_rules()
    # same composite probes on both sides: only the *ordering* differs
    heuristic_s, heuristic_model = _time_saturation(
        rules, _cardinality_model, lambda: Planner(estimator="heuristic")
    )
    stats_s, stats_model = _time_saturation(
        rules, _cardinality_model, Planner
    )
    assert stats_model == heuristic_model
    speedup = heuristic_s / stats_s
    print_table(
        ["link_rows", "heuristic_s", "stats_s", "speedup"],
        [[LINK_ROWS, heuristic_s, stats_s, speedup]],
        "E17b: skewed cardinalities (flat discount vs distinct counts)",
    )
    assert speedup >= 1.5

    model = _cardinality_model()
    benchmark(
        lambda: semi_naive_saturate(rules, model.copy(), planner=Planner())
    )


# ----------------------------------------------------------------------
# E17d: composite-index key counts fix correlated-column estimates
# ----------------------------------------------------------------------


def _correlated_star_model(rows: int) -> Model:
    """The E17a star with its columns *functionally* correlated: B is
    determined by A, so there are only ``A_BUCKETS`` distinct (A, B)
    pairs however many rows exist — the shape ROADMAP flagged as the
    estimator's worst case."""
    model = Model()
    for i in range(rows):
        a = 1 + (i % A_BUCKETS)
        b = (a * 17) % B_BUCKETS
        model.add(Atom("triple", (a, b, i)))
    return model


def test_e17d_composite_index_tightens_correlated_estimate():
    """Uniform independence multiplies the per-column distinct counts
    (~200 x ~200) and predicts a sub-row bucket; in truth every A drags
    its B along, so a pair probe returns a full per-A bucket (~100 rows).
    Once the composite (A, B) index exists its key count is the exact
    distinct count of the combination and the estimate becomes exact."""
    model = _correlated_star_model(TRIPLE_ROWS[0])
    triple = model.relation("triple")
    columns = (0, 1)
    independence = triple.estimated_matches(columns)  # no index yet
    index = triple.index_for(columns)  # first probe builds it
    composite = triple.estimated_matches(columns)
    true_mean = len(triple) / len(index)
    print_table(
        ["estimator", "estimated_rows", "true_mean_bucket"],
        [
            ["independence", independence, true_mean],
            ["composite index", composite, true_mean],
        ],
        "E17d: functionally correlated (A, B) probe estimate",
    )
    # The composite estimate is exact; independence is off by >= 50x.
    assert composite == true_mean
    assert independence < true_mean / 50


# ----------------------------------------------------------------------
# E17c: covered delta positions are skipped
# ----------------------------------------------------------------------

EDGE_NODES = 500
EDGE_FANOUT = 4


def _covered_rules():
    builder = ProgramBuilder()
    builder.rule("r", ("X", "Y")).pos("e", "X", "Y")
    (
        builder.rule("walk", ("X", "W"))
        .pos("r", "X", "Y")
        .pos("r", "Y", "Z")
        .pos("r", "Z", "W")
    )
    return builder.build().rules


def _covered_model() -> tuple[Model, dict]:
    model = Model()
    delta: dict[str, set[tuple]] = {"e": set()}
    for i in range(EDGE_NODES):
        for j in range(EDGE_FANOUT):
            row = (i, (i * 3 + j * 31 + 1) % EDGE_NODES)
            model.add(Atom("e", row))
            delta["e"].add(row)
    return model, delta


def test_e17c_covered_delta_positions(benchmark):
    """An increment that derives ``r`` whole makes every delta position of
    ``walk(X, W) :- r(X, Y), r(Y, Z), r(Z, W)`` covered: the first two
    triangular firings join against an empty pre-round content and only
    discover it row by row; the cost-based choice skips them outright."""
    rules = _covered_rules()

    def saturate_increment(planner):
        model, delta = _covered_model()
        started = time.perf_counter()
        semi_naive_saturate(
            rules, model, planner=planner, initial_full=False, delta=delta
        )
        return time.perf_counter() - started, model

    def best_of(make_planner, repeats=3):
        best, model = float("inf"), None
        for _ in range(repeats):
            elapsed, model = saturate_increment(make_planner())
            best = min(best, elapsed)
        return best, model

    # delta_choice=False is the exact ablation: literal reordering and
    # composite probes stay on, only the delta-position logic reverts to
    # fire-every-position-in-enumeration-order.
    enum_s, enum_model = best_of(lambda: Planner(delta_choice=False))
    stats_s, stats_model = best_of(Planner)
    assert stats_model == enum_model
    speedup = enum_s / stats_s
    print_table(
        ["edges", "enumeration_s", "cost_based_s", "speedup"],
        [[EDGE_NODES * EDGE_FANOUT, enum_s, stats_s, speedup]],
        "E17c: fully-covered delta positions (fire-all vs skip-dominated)",
    )
    # The skip must never cost anything; the floor allows scheduler noise.
    assert speedup >= 0.85

    def run_benchmark():
        model, delta = _covered_model()
        semi_naive_saturate(
            rules, model, planner=Planner(), initial_full=False, delta=delta
        )

    benchmark(run_benchmark)
