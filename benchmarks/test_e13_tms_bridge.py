"""E13 — the belief-revision framing (sections 1 and 6).

The paper "combines the declarative and dynamic aspects of non-monotonic
reasoning": its maintained model is a belief set, its supports are
justifications. Measured correspondences:

* the JTMS well-founded labelling of the ground justification network is
  exactly M(P) on every workload;
* the ATMS label of a fact enumerates exactly its fact-level supports
  (de Kleer's multiple contexts = section 4.3 at fact granularity);
* grounding + labelling costs grow much faster than the native engines —
  the reason the paper builds supports *during* saturation instead.
"""

import time

from repro.bench.reporting import print_table
from repro.core.factlevel_engine import FactLevelEngine
from repro.datalog.atoms import fact
from repro.datalog.evaluation import compute_model
from repro.tms.bridge import standard_model_via_jtms, to_atms, to_jtms
from repro.workloads.families import review_pipeline
from repro.workloads.paper import cascade_example, meet, negation_chain, pods


def test_e13_jtms_equivalence(benchmark):
    rows = []
    for name, program in (
        ("PODS", pods(l=20, accepted=(2, 4, 8))),
        ("chain", negation_chain(10)),
        ("section 5.1", cascade_example()),
        ("MEET", meet(l=10)),
        ("review pipeline", review_pipeline(papers=10, seed=1)),
    ):
        model = compute_model(program).as_set()
        via_jtms = standard_model_via_jtms(program)
        rows.append([name, len(model), via_jtms == model])
        assert via_jtms == model, name
    print_table(
        ["workload", "model_size", "jtms_equals_M(P)"],
        rows,
        "E13: M(P) == well-founded JTMS labelling",
    )

    program = review_pipeline(papers=10, seed=1)
    benchmark(lambda: standard_model_via_jtms(program))


def test_e13_atms_labels_are_fact_level_supports(benchmark):
    program = meet(l=6)
    atms = to_atms(program)
    engine = FactLevelEngine(program)
    pc_paper = fact("accepted", 1)
    label = atms.label(pc_paper)
    records = engine.records_of(pc_paper)
    print_table(
        ["structure", "count"],
        [["ATMS label environments", len(label)],
         ["fact-level records", len(records)]],
        "E13b: accepted(pc_paper) in MEET",
    )
    # both enumerate the two independent deductions
    assert len(label) == 2
    assert len(records) == 2

    benchmark(lambda: to_atms(program))


def test_e13_native_engines_beat_grounding(benchmark):
    program = review_pipeline(papers=15, seed=2)

    started = time.perf_counter()
    FactLevelEngine(program)
    native_s = time.perf_counter() - started

    started = time.perf_counter()
    to_jtms(program).in_nodes()
    bridge_s = time.perf_counter() - started

    print_table(
        ["approach", "build_s"],
        [["saturation-integrated supports", native_s],
         ["ground network + relabel", bridge_s]],
        "E13c: building the belief state",
    )
    assert native_s < bridge_s

    benchmark(lambda: FactLevelEngine(program))
