"""E18 — the bulk-operation pipeline: ingest, restore, restricted deltas.

PR 5's contract is that every bulk path — snapshot restore, ``Model.copy``,
transaction rollback, batch maintenance — scales with data volume, not
with per-tuple bookkeeping. The paper's maintenance procedure is only
profitable while the bookkeeping stays cheaper than recomputation, and the
related view-revision literature (arXiv:1407.3512, arXiv:1301.5154)
stresses that revision systems live or die on the cost of applying *sets*
of changes. Three measurements on the dense E15 workload:

* **E18a (bulk ingest)** — loading the full derived model into a fresh
  ``Model`` three ways: per-tuple ``add`` (the pre-PR path, O(arity) dict
  updates per tuple), ``add_many`` (one batched statistics pass per
  relation), and ``Model.from_relation_data`` (``Relation.bulk_load``:
  set construction + one C-level Counter pass per column). The bulk paths
  must be >= 2x faster while leaving tuples *and* distinct counts
  identical.

* **E18b (restore paths)** — the in-memory restore per-fact vs bulk
  (>= 2x), and a full ``Store.open`` against a v1 snapshot (per-fact
  tagged atoms) vs a v2 snapshot (columnar facts + compact state): the
  new codec must never be slower.

* **E18c (materialized restricted deltas)** — from-scratch transitive
  closure over the dense edge set, where every semi-naive round restricts
  the second self-join position to its pre-round content. Materialized
  bucket subtraction (``Relation.probe_excluding``) vs the per-candidate
  membership filter (``Planner(materialize_deltas=False)``); identical
  models, parity-or-better wall clock.
"""

import time

from test_e15_snapshot_restore import _workload

from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.datalog.atoms import Atom
from repro.datalog.builder import ProgramBuilder
from repro.datalog.evaluation import semi_naive_saturate
from repro.datalog.model import Model
from repro.datalog.plan import Planner
from repro.store import Store
from repro.store.serialize import relation_data_to_facts
from repro.store.snapshot import write_snapshot

REPEATS = 5  # micro-measurements; E18c passes repeats=3 (each run is seconds)


def _best_of(action, repeats: int = REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = action()
        best = min(best, time.perf_counter() - started)
    return best, result


def _dense_engine():
    return create_engine("cascade", _workload())


def _assert_equivalent(reference: Model, candidate: Model) -> None:
    """Same facts AND same planner statistics, relation by relation."""
    assert candidate.as_set() == reference.as_set()
    for name in reference.relation_names():
        assert (
            candidate.relation(name).distinct_counts()
            == reference.relation(name).distinct_counts()
        ), name


# ----------------------------------------------------------------------
# E18a: bulk ingest
# ----------------------------------------------------------------------


def test_e18a_bulk_ingest(benchmark):
    engine = _dense_engine()
    facts = list(engine.model.facts())
    data = engine.model.relation_data()

    def per_tuple():
        model = Model()
        for fact in facts:
            model.add(fact)
        return model

    def add_many():
        model = Model()
        model.add_many(facts)
        return model

    def bulk_load():
        return Model.from_relation_data(data)

    per_tuple_s, reference = _best_of(per_tuple)
    add_many_s, via_many = _best_of(add_many)
    bulk_load_s, via_bulk = _best_of(bulk_load)
    _assert_equivalent(reference, via_many)
    _assert_equivalent(reference, via_bulk)

    print_table(
        ["path", "time_s", "speedup_vs_per_tuple"],
        [
            ["per-tuple add", per_tuple_s, 1.0],
            ["add_many", add_many_s, per_tuple_s / add_many_s],
            ["bulk_load", bulk_load_s, per_tuple_s / bulk_load_s],
        ],
        f"E18a: ingest {len(facts)} facts into a fresh model, best of "
        f"{REPEATS}",
    )
    # Acceptance bar (ISSUE 5): the bulk paths win by >= 2x.
    assert per_tuple_s / add_many_s >= 2.0
    assert per_tuple_s / bulk_load_s >= 2.0

    benchmark(bulk_load)


# ----------------------------------------------------------------------
# E18b: restore paths (in-memory, and v1 vs v2 snapshot files)
# ----------------------------------------------------------------------


def test_e18b_restore_paths(benchmark, tmp_path):
    program = _workload()
    store = Store.create(tmp_path / "v2", program, engine="cascade")
    store.snapshot()
    state = store.engine.state_dict()
    expected = store.model.as_set()
    store.close()

    # The same belief state as a v1 snapshot file: identical store layout,
    # only the base snapshot uses the per-fact tagged codec.
    legacy = Store.create(tmp_path / "v1", program, engine="cascade")
    legacy.close()
    write_snapshot(tmp_path / "v1", 0, state, format_version=1)

    facts = relation_data_to_facts(state["model"])

    def per_fact_restore():
        model = Model()
        for fact in facts:
            model.add(fact)
        return model

    def bulk_restore():
        return Model.from_relation_data(state["model"])

    per_fact_s, reference = _best_of(per_fact_restore)
    bulk_s, restored = _best_of(bulk_restore)
    _assert_equivalent(reference, restored)

    def open_store(directory):
        def action():
            reopened = Store.open(directory)
            model = reopened.model.as_set()
            reopened.close()
            return model

        return action

    v2_s, v2_model = _best_of(open_store(tmp_path / "v2"))
    v1_s, v1_model = _best_of(open_store(tmp_path / "v1"))
    assert v1_model == v2_model == expected

    print_table(
        ["path", "time_s", "speedup"],
        [
            ["model per-fact add", per_fact_s, 1.0],
            ["model bulk_load", bulk_s, per_fact_s / bulk_s],
            ["Store.open, v1 snapshot", v1_s, 1.0],
            ["Store.open, v2 snapshot", v2_s, v1_s / v2_s],
        ],
        f"E18b: restore the dense E15 cascade state, best of {REPEATS}",
    )
    # Acceptance bar (ISSUE 5): bulk model restore >= 2x over per-fact;
    # the v2 codec must never lose to v1 (floor allows scheduler noise).
    assert per_fact_s / bulk_s >= 2.0
    assert v1_s / v2_s >= 0.9

    benchmark(open_store(tmp_path / "v2"))


# ----------------------------------------------------------------------
# E18c: materialized restricted deltas
# ----------------------------------------------------------------------


def _closure_rules():
    builder = ProgramBuilder()
    builder.rule("t", ("X", "Y")).pos("e", "X", "Y")
    (
        builder.rule("t", ("X", "Z"))
        .pos("t", "X", "Y")
        .pos("t", "Y", "Z")
    )
    return builder.build().rules


def _edge_model() -> Model:
    """The dense E15 edge set (chain plus skip edges) as plain facts."""
    model = Model()
    nodes = 160
    for i in range(nodes - 1):
        model.add(Atom("e", (i, i + 1)))
        for skip in (3, 5, 7, 11, 13):
            if i + skip < nodes:
                model.add(Atom("e", (i, i + skip)))
    return model


def test_e18c_materialized_delta_ablation(benchmark):
    """Every round of the self-joined closure restricts the later delta
    position to its pre-round content; subtracting the round's increment
    from the probed buckets once (set subtraction) must match the
    per-candidate membership filter exactly and cost no more."""
    rules = _closure_rules()

    def saturate(planner_factory):
        def action():
            model = _edge_model()
            semi_naive_saturate(rules, model, planner=planner_factory())
            return model

        return action

    filtered_s, filtered_model = _best_of(
        saturate(lambda: Planner(materialize_deltas=False)), repeats=3
    )
    materialized_s, materialized_model = _best_of(saturate(Planner), repeats=3)
    assert materialized_model == filtered_model
    speedup = filtered_s / materialized_s
    print_table(
        ["configuration", "time_s", "speedup"],
        [
            ["per-candidate filter", filtered_s, 1.0],
            ["materialized subtraction", materialized_s, speedup],
        ],
        "E18c: restricted delta probes on the dense transitive closure, "
        "best of 3",
    )
    # The subtraction must never cost; the floor allows scheduler noise.
    assert speedup >= 0.85

    benchmark(saturate(Planner))
