"""E15 — reopening a store: snapshot restore vs from-scratch rebuild.

The store's promise (repro.store) is that resuming a maintained database
costs *decode the snapshot + replay the journal tail* instead of
re-saturating the whole program. On a derivation-heavy workload (two
levels of join rules over a branching edge relation, plus a negation
layer) restore skips every join the rebuild performs, so a checkpointed
store must reopen faster than ``create_engine`` for every engine. Until
the v2 snapshot codec (columnar facts, compact array-tagged supports,
bulk-loaded restore) the fact-level engine was report-only here: its
per-deduction records made the snapshot enormous — section 5.2's
"prohibitive bookkeeping" showing up again, this time at serialization —
and the tagged-object decode could lose to a planned rebuild outright.
This test is also CI's timing-regression guard for the restore path: it
fails the build if any engine's restore stops beating its rebuild on
this dense workload.

A second scenario reopens a cascade store whose snapshot is a few
revisions behind the head, so the journal tail is actually replayed; the
delta-driven cascade updates keep that cheap. (The section 4 engines
re-saturate whole strata per update, so a tail replay on them costs a
rebuild-sized amount by design — snapshot at the head is their story.)
"""

import time

from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.store import Store

RESTORE_MUST_WIN = (
    "static", "dynamic", "cascade", "setofsets-paired", "factlevel"
)
REPORT_ONLY: tuple = ()
NODES = 160
TAIL = 3  # journal records replayed on top of the snapshot (scenario 2)


def _workload(nodes: int = NODES) -> str:
    """A chain with skip edges, two join levels, and a negation layer.

    The skip edges densify the graph without growing the path closure
    (the chain alone reaches every pair): they multiply the join work a
    rebuild performs per derived fact, while the snapshot restore only
    pays for decoding the facts. That keeps the rebuild/restore margin
    comfortable even with the selectivity-planned joins (E16).
    """
    lines = []
    for i in range(nodes - 1):
        lines.append(f"edge({i}, {i + 1}).")
        for skip in (3, 5, 7, 11, 13):
            if i + skip < nodes:
                lines.append(f"edge({i}, {i + skip}).")
    for i in range(nodes):
        lines.append(f"node({i}).")
    lines.append("hop(X, Z) :- edge(X, Y), edge(Y, Z).")
    lines.append("path(X, Y) :- edge(X, Y).")
    lines.append("path(X, Z) :- edge(X, Y), path(Y, Z).")
    lines.append("looped(X) :- path(X, X).")
    lines.append("terminal(X) :- node(X), not looped(X), not source(X).")
    return "\n".join(lines)


def test_e15_snapshot_restore_vs_rebuild(tmp_path):
    program = _workload()
    rows = []
    speedups = {}
    for name in RESTORE_MUST_WIN + REPORT_ONLY:
        directory = tmp_path / name
        store = Store.create(directory, program, engine=name)
        for i in range(TAIL):
            store.insert_fact(f"source({i})")
        snapshot_started = time.perf_counter()
        store.snapshot()  # checkpoint at the head
        snapshot_s = time.perf_counter() - snapshot_started
        model = store.model.as_set()
        final_program = store.engine.db.program
        store.close()

        restore_s = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            reopened = Store.open(directory)
            restore_s = min(restore_s, time.perf_counter() - started)
            assert reopened.model.as_set() == model
            reopened.close()

        rebuild_s = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            rebuilt = create_engine(name, final_program)
            rebuild_s = min(rebuild_s, time.perf_counter() - started)
            assert rebuilt.model.as_set() == model

        speedups[name] = rebuild_s / restore_s
        rows.append([name, snapshot_s, restore_s, rebuild_s, speedups[name]])

    print_table(
        ["engine", "snapshot_s", "restore_s", "rebuild_s", "rebuild/restore"],
        rows,
        "E15: reopen a checkpointed store vs rebuild from scratch, best of 3",
    )
    for name in RESTORE_MUST_WIN:
        assert speedups[name] > 1.0, (
            f"{name}: snapshot restore ({speedups[name]:.2f}x) "
            "did not beat rebuild"
        )


def test_e15_reopen_with_journal_tail(benchmark, tmp_path):
    """Snapshot + tail replay still beats a rebuild for the cascade engine."""
    program = _workload()
    directory = tmp_path / "tail"
    store = Store.create(directory, program, engine="cascade")
    store.snapshot()  # checkpoint BEFORE the tail
    for i in range(TAIL):
        store.insert_fact(f"source({i})")
    model = store.model.as_set()
    final_program = store.engine.db.program
    store.close()

    restore_s = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        reopened = Store.open(directory)
        restore_s = min(restore_s, time.perf_counter() - started)
        assert reopened.model.as_set() == model
        reopened.close()

    rebuild_s = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        rebuilt = create_engine("cascade", final_program)
        rebuild_s = min(rebuild_s, time.perf_counter() - started)
        assert rebuilt.model.as_set() == model

    print_table(
        ["scenario", "time_s"],
        [
            [f"reopen (snapshot + {TAIL}-record tail)", restore_s],
            ["rebuild from scratch", rebuild_s],
        ],
        "E15b: cascade store, snapshot lagging the journal head, best of 3",
    )
    assert rebuild_s / restore_s > 1.0, (
        f"tail replay reopen ({rebuild_s / restore_s:.2f}x) "
        "did not beat rebuild"
    )

    benchmark(lambda: Store.open(directory).close())
