"""E7 — the paper's central comparison: who migrates how much.

The successive solutions "rely successively on more dynamic information"
and migrate less and less: static (4.1) ≥ dynamic (4.2) ≥ sets-of-sets
(4.3) ≥ cascade (5.1) ≥ fact-level (5.2) = 0. Measured over the realistic
workload families and the synthetic sweeps; the ordering must hold on
aggregate for each workload.
"""

from repro.bench.harness import RUN_HEADERS, compare_engines
from repro.bench.reporting import print_table
from repro.datalog.atoms import fact
from repro.workloads.families import reachability, review_pipeline
from repro.workloads.synthetic import generate
from repro.workloads.updates import asserted_facts, flip_sequence, random_updates

ORDERED = ("static", "dynamic", "setofsets-paired", "cascade", "factlevel")


def _assert_ordering(runs):
    migrations = {run.engine: run.migrated for run in runs}
    chain = [migrations[name] for name in ORDERED]
    for earlier, later in zip(chain, chain[1:]):
        assert earlier >= later, migrations
    assert migrations["factlevel"] == 0


def test_e07_review_pipeline(benchmark):
    program = review_pipeline(papers=25, committee=4, seed=1)
    updates = [
        ("insert_fact", fact("negative_review", "pc1", 1)),
        ("insert_fact", fact("negative_review", "pc2", 5)),
        ("delete_fact", fact("negative_review", "pc1", 1)),
        ("insert_fact", fact("negative_review", "pc3", 9)),
        ("delete_fact", fact("negative_review", "pc2", 5)),
        ("insert_fact", fact("negative_review", "pc4", 13)),
    ]
    runs = compare_engines(program, updates, ORDERED, verify=True)
    print_table(
        RUN_HEADERS, [run.row() for run in runs],
        "E7a: review pipeline, 6 review updates",
    )
    for run in runs:
        assert run.consistent
    _assert_ordering(runs)

    benchmark(lambda: compare_engines(program, updates[:2], ("cascade",),
                                      verify=False))


def test_e07_reachability(benchmark):
    program = reachability(nodes=10, edge_probability=0.18, seed=3)
    updates = flip_sequence(
        asserted_facts(program, ["link"])[:6], seed=3, count=12
    )
    runs = compare_engines(program, updates, ORDERED, verify=True)
    print_table(
        RUN_HEADERS, [run.row() for run in runs],
        "E7b: network reachability, 12 link flaps",
    )
    for run in runs:
        assert run.consistent
    _assert_ordering(runs)

    benchmark(
        lambda: compare_engines(program, updates[:3], ("cascade",),
                                verify=False)
    )


def test_e07_synthetic_aggregate(benchmark):
    totals = {name: 0 for name in ORDERED}
    for seed in range(6):
        syn = generate(seed)
        updates = random_updates(
            syn.program, syn.edb_relations, syn.arities, syn.domain,
            count=8, seed=seed,
        )
        runs = compare_engines(syn.program, updates, ORDERED, verify=True)
        for run in runs:
            assert run.consistent, f"seed={seed} {run.engine}"
            totals[run.engine] += run.migrated
    print_table(
        ["engine", "total_migrated"],
        [[name, totals[name]] for name in ORDERED],
        "E7c: 6 synthetic databases x 8 updates",
    )
    chain = [totals[name] for name in ORDERED]
    for earlier, later in zip(chain, chain[1:]):
        assert earlier >= later, totals
    assert totals["factlevel"] == 0

    syn = generate(0)
    updates = random_updates(
        syn.program, syn.edb_relations, syn.arities, syn.domain,
        count=4, seed=0,
    )
    benchmark(
        lambda: compare_engines(syn.program, updates, ("cascade",),
                                verify=False)
    )
