"""E8 — the bookkeeping/migration trade-off of section 5.2.

Paper claim: "there is a trade-off between an efficient implementation of
the supports and the minimization of the migration. Indeed, to maintain
supports efficiently they should be kept small. But then each fact will be
more often subject to migration." Support storage must grow
static (0) < cascade (rule pointers) ≤ dynamic < sets-of-sets < fact-level,
inversely to migration (E7).
"""

from repro.bench.harness import compare_engines
from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.workloads.families import review_pipeline
from repro.workloads.updates import asserted_facts, flip_sequence

ENGINES = ("static", "cascade", "dynamic", "setofsets-paired", "factlevel")


def test_e08_storage_vs_migration(benchmark):
    program = review_pipeline(papers=30, committee=4, seed=2)
    updates = flip_sequence(
        asserted_facts(program, ["submitted"])[:6], seed=2, count=12
    )
    runs = compare_engines(program, updates, ENGINES, verify=True)
    rows = [
        [run.engine, run.support_entries_start, run.support_entries_end,
         run.migrated, run.duration_s]
        for run in runs
    ]
    print_table(
        ["engine", "supports_before", "supports_after", "migrated", "time_s"],
        rows,
        "E8: support storage vs migration, review pipeline",
    )
    entries = {run.engine: run.support_entries_end for run in runs}
    migrations = {run.engine: run.migrated for run in runs}
    # storage ordering (the cost axis): the support-free solution is free,
    # one pair per fact (4.2) is cheaper than one element per deduction
    # (4.3), and fact-level records dominate the rule pointers they refine.
    assert entries["static"] == 0
    assert all(entries[name] > 0 for name in ENGINES if name != "static")
    assert entries["dynamic"] < entries["setofsets-paired"]
    assert entries["cascade"] < entries["factlevel"]
    # migration ordering (the quality axis) — inverse
    assert migrations["static"] >= migrations["dynamic"]
    assert migrations["dynamic"] >= migrations["setofsets-paired"]
    assert migrations["setofsets-paired"] >= migrations["cascade"]
    assert migrations["factlevel"] == 0

    def build_factlevel():
        return create_engine("factlevel", program).support_entry_count()

    benchmark(build_factlevel)


def test_e08_pruning_keeps_sets_of_sets_small(benchmark):
    from repro.core.setofsets_engine import SetOfSetsEngine

    program = review_pipeline(papers=20, committee=4, seed=5)
    pruned = SetOfSetsEngine(program, prune=True)
    unpruned = SetOfSetsEngine(program, prune=False)
    print_table(
        ["variant", "support_entries"],
        [["pruned (minimal antichains)", pruned.support_entry_count()],
         ["unpruned (every deduction)", unpruned.support_entry_count()]],
        "E8b: 'small supports' pruning of section 4.3",
    )
    assert pruned.support_entry_count() <= unpruned.support_entry_count()

    benchmark(lambda: SetOfSetsEngine(program, prune=True))
