"""E14 (extension) — batch maintenance.

Not in the paper, which treats one update at a time; the natural extension
of its framing ("the maintenance problem can be viewed as a task of
processing supplementary information") is to process a whole batch in one
cascade pass: the INC/DEC sets are seeded with the *net* change of the
batch, so updates that cancel out cost nothing and shared strata are
walked once.
"""

import time

from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.workloads.families import review_pipeline
from repro.workloads.updates import asserted_facts, flip_sequence


def _batch(program, k):
    return flip_sequence(
        asserted_facts(program, ["submitted"])[:k], seed=14, count=2 * k
    )


def test_e14_batch_vs_sequential(benchmark):
    program = review_pipeline(papers=40, committee=4, seed=14)
    rows = []
    for k in (2, 4, 8):
        updates = _batch(program, k)

        sequential = create_engine("cascade", program)
        started = time.perf_counter()
        sequential_migrated = sum(
            len(sequential.apply(op, subject).migrated)
            for op, subject in updates
        )
        sequential_s = time.perf_counter() - started

        batched = create_engine("cascade", program)
        started = time.perf_counter()
        result = batched.apply_batch(updates)
        batch_s = time.perf_counter() - started

        assert batched.model == sequential.model
        assert batched.is_consistent()
        rows.append(
            [
                len(updates),
                sequential_migrated,
                len(result.migrated),
                sequential_s,
                batch_s,
            ]
        )
        # a flip sequence largely cancels out: the batch must migrate less
        assert len(result.migrated) <= sequential_migrated
    print_table(
        ["updates", "seq_migrated", "batch_migrated", "seq_s", "batch_s"],
        rows,
        "E14: flip bursts, sequential vs one-pass batch (cascade)",
    )

    updates = _batch(program, 8)
    benchmark(
        lambda: create_engine("cascade", program).apply_batch(updates)
    )


def test_e14_cancelling_batch_is_free(benchmark):
    program = review_pipeline(papers=40, committee=4, seed=14)
    victim = asserted_facts(program, ["submitted"])[0]
    updates = [("delete_fact", victim), ("insert_fact", victim)] * 3

    engine = create_engine("cascade", program)
    result = engine.apply_batch(updates)
    print_table(
        ["updates", "removed", "added", "migrated",
         "derivations_fired"],
        [[len(updates), len(result.removed), len(result.added),
          len(result.migrated), result.stats["derivations_fired"]]],
        "E14b: a batch that cancels to nothing",
    )
    assert not result.removed and not result.added
    assert result.stats["derivations_fired"] == 0
    assert engine.is_consistent()

    benchmark(
        lambda: create_engine("cascade", program).apply_batch(updates)
    )
