"""E3 — Example 2: the negation chain kills unsigned dynamic supports.

Paper claim: recording only the relations of negative hypotheses loses the
dependency of p3 on p0 ("the removal of the fact p3 from M(P) is not
captured"); signing the entries and expanding through the static closures
("the above modification restores correctness") fixes it. The sweep scales
the chain: the unsigned variant is wrong at every length, the signed one
exact; the timing compares a cascaded flip against full recomputation as
the chain deepens.
"""

from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.workloads.paper import negation_chain

SIZES = (5, 20, 60)


def test_e03_signed_vs_unsigned(benchmark):
    rows = []
    for n in SIZES:
        for name in ("dynamic", "dynamic-unsigned"):
            engine = create_engine(name, negation_chain(n))
            engine.insert_fact("p0")
            correct = engine.is_consistent()
            rows.append([name, n, len(engine.model), correct])
            if name == "dynamic":
                assert correct
            else:
                assert not correct, "unsigned supports must fail on the chain"
    print_table(
        ["engine", "chain_length", "model_size", "correct"],
        rows,
        "E3: INSERT p0 into the negation chain",
    )

    def signed_flip():
        engine = create_engine("dynamic", negation_chain(SIZES[-1]))
        return engine.insert_fact("p0")

    benchmark(signed_flip)


def test_e03_cascade_vs_recompute_on_chain(benchmark):
    # The chain is the worst case for everyone: the whole model flips.
    n = 40
    rows = []
    for name in ("cascade", "recompute"):
        engine = create_engine(name, negation_chain(n))
        result = engine.insert_fact("p0")
        rows.append([name, result.duration_s, len(result.added)])
        assert engine.is_consistent()
    print_table(
        ["engine", "update_s", "added"],
        rows,
        f"E3: whole-model flip, chain n={n}",
    )

    engine = create_engine("cascade", negation_chain(n))
    toggle = [True]

    def flip():
        if toggle[0]:
            engine.insert_fact("p0")
        else:
            engine.delete_fact("p0")
        toggle[0] = not toggle[0]

    benchmark(flip)
