"""E11 — section 5.1's improvements, ablated.

Two knobs the paper proposes for the cascade solution:

* skip-strata: "one can skip the strata in which no relation depends from
  the set DEC ∪ INC" — measured on a wide database where an update touches
  one narrow tower of strata;
* processing order: the printed pseudocode (REMOVEPOS; REMOVENEG; SATURATE)
  vs saturating first (which realises the paper's no-removal claim, see E6)
  — measured as migration across a workload.
"""

import time

from repro.bench.reporting import print_table
from repro.core.cascade_engine import CascadeEngine
from repro.datalog.builder import ProgramBuilder
from repro.workloads.families import review_pipeline
from repro.workloads.updates import asserted_facts, flip_sequence


def _towers(towers: int, height: int):
    """Many independent negation towers: an update to one tower must not
    visit the strata of the others."""
    builder = ProgramBuilder()
    for t in range(towers):
        builder.fact(f"base{t}", 1)
        builder.rule(f"lvl{t}_1", ("X",)).pos(f"base{t}", "X").neg(
            f"off{t}_0", "X"
        )
        for h in range(2, height + 1):
            builder.rule(f"lvl{t}_{h}", ("X",)).pos(
                f"lvl{t}_{h-1}", "X"
            ).neg(f"off{t}_{h-1}", "X")
    return builder.build()


def test_e11_skip_strata(benchmark):
    # With the finest (scc) stratification the 20 towers occupy disjoint
    # strata, so an update to one tower can skip every stratum of the other
    # nineteen. (With level granularity the towers share strata and the
    # improvement cannot trigger — DESIGN.md discusses the interplay.)
    program = _towers(towers=20, height=8)
    rows = []
    times = {}
    for skip in (True, False):
        engine = CascadeEngine(program, skip_strata=skip, granularity="scc")
        started = time.perf_counter()
        for t in range(20):
            engine.insert_fact(f"off{t}_0(1)")
            engine.delete_fact(f"off{t}_0(1)")
        elapsed = time.perf_counter() - started
        times[skip] = elapsed
        rows.append(["skip" if skip else "no-skip", elapsed])
        assert engine.is_consistent()
    print_table(
        ["variant", "40_updates_s"],
        rows,
        "E11a: skip-strata ablation (20 towers x 8 strata, scc granularity)",
    )
    assert times[True] < times[False]  # skipping must win here

    engine = CascadeEngine(program, skip_strata=True, granularity="scc")
    toggle = [True]

    def flip():
        if toggle[0]:
            engine.insert_fact("off0_0(1)")
        else:
            engine.delete_fact("off0_0(1)")
        toggle[0] = not toggle[0]

    benchmark(flip)


def test_e11_order_ablation(benchmark):
    program = review_pipeline(papers=20, committee=4, seed=6)
    updates = flip_sequence(
        asserted_facts(program, ["submitted"])[:5], seed=6, count=10
    )
    rows = []
    migrations = {}
    for order in ("saturate_first", "paper"):
        engine = CascadeEngine(program, order=order)
        migrated = 0
        for operation, subject in updates:
            migrated += len(engine.apply(operation, subject).migrated)
        assert engine.is_consistent()
        migrations[order] = migrated
        rows.append([order, migrated])
    print_table(
        ["order", "migrated_total"],
        rows,
        "E11b: stratum-processing order ablation",
    )
    # saturating first can only reduce removals (fresh records are exempt
    # from REMOVENEG); it must never migrate more
    assert migrations["saturate_first"] <= migrations["paper"]

    def one_flip():
        engine = CascadeEngine(program, order="saturate_first")
        return engine.apply(*updates[0])

    benchmark(one_flip)
