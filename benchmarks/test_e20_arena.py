"""E20 — the live columnar support arena: revise, copy, roll back, snapshot.

PR 8 moves the hot support representation out of per-deduction record
objects into :mod:`repro.core.arena`: interned atom/rule tables plus
int-slot record columns, with copy-on-write support tables. The paper's
section 5.2 engine (fact-level records, zero migration) is the stress
case — it keeps one record per deduction, so every cost the arena is
meant to remove (object hashing, deep state copies, tagged-object
serialization) shows up here at full size. Four measurements on the dense
E15 workload, arena vs the record-object baseline (``arena=False``, the
differential ablation the equivalence tests pin down):

* **E20a (bulk revision throughput)** — the same flip sequence applied to
  both representations; identical final models and support totals, wall
  clock reported (the arena must at least hold parity: the point of the
  refactor is cheaper copies and snapshots *without* taxing updates).

* **E20b (checkpoint + rollback latency — CI guard)** — one
  ``engine.checkpoint()`` + mutate + ``restore()`` cycle, the transaction
  rollback path. The arena checkpoint shares the model relations and the
  support table copy-on-write; the record path deep-copies every record
  set. Named guard: the arena cycle must beat the record cycle.

* **E20c (snapshot encode/decode)** — v2 ``write_snapshot`` /
  ``read_snapshot`` of the full state. The arena state serializes as one
  canonical ``"A"`` node straight off the live intern tables instead of
  collect-and-intern over thousands of record objects; encode must not
  lose, decode is reported.

* **E20d (checkpoint memory)** — tracemalloc peak while holding a
  checkpoint of the live state: copy-on-write sharing vs deep record
  copies.
"""

import time
import tracemalloc

from test_e15_snapshot_restore import _workload

from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.datalog.parser import parse_fact
from repro.store.snapshot import read_snapshot, snapshot_name, write_snapshot

REPEATS = 5
NODES = 120
FLIPS = 12

# E20b's acceptance bar: the arena checkpoint+restore cycle must beat the
# record-object deep copy by at least this factor on the dense workload.
ARENA_COPY_MUST_WIN = 2.0
# E20c floor: arena snapshot encode at parity or better (margin for
# scheduler noise).
ARENA_ENCODE_FLOOR = 0.9


def _best_of(action, repeats: int = REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = action()
        best = min(best, time.perf_counter() - started)
    return best, result


def _engines():
    program = _workload(NODES)
    return (
        create_engine("factlevel", program),
        create_engine("factlevel", program, arena=False),
    )


def _flip_updates():
    updates = []
    for i in range(FLIPS):
        subject = parse_fact(f"source({i})")
        updates.append(("insert_fact", subject))
        if i % 2:
            updates.append(("delete_fact", subject))
    return updates


def test_e20a_bulk_revision_throughput():
    arena_engine, record_engine = _engines()
    updates = _flip_updates()

    def drive(engine):
        def action():
            for operation, subject in updates:
                engine.apply(operation, subject)
            for operation, subject in reversed(updates):
                inverse = (
                    "delete_fact"
                    if operation == "insert_fact"
                    else "insert_fact"
                )
                engine.apply(inverse, subject)
            return engine.model

        return action

    arena_s, _ = _best_of(drive(arena_engine), repeats=3)
    record_s, _ = _best_of(drive(record_engine), repeats=3)
    assert arena_engine.model == record_engine.model
    assert (
        arena_engine.support_entry_count()
        == record_engine.support_entry_count()
    )

    print_table(
        ["representation", "time_s", "speedup_vs_records"],
        [
            ["records", record_s, 1.0],
            ["arena", arena_s, record_s / arena_s],
        ],
        f"E20a: {2 * len(updates)} fact-level revisions on the dense "
        f"workload, best of 3",
    )


def test_e20b_checkpoint_rollback_guard():
    arena_engine, record_engine = _engines()
    mutation = parse_fact("source(0)")

    # Correctness first (untimed): a revision between checkpoint and
    # restore rolls back to the exact pre-checkpoint state.
    for engine in (arena_engine, record_engine):
        saved = engine.checkpoint()
        before = engine.model.as_set()
        engine.apply("insert_fact", mutation)
        engine.restore(saved)
        assert engine.model.as_set() == before

    # The timed cycle is the pure copy cost — checkpoint + restore with
    # no revision in between. That is what a transaction pays on top of
    # its updates: the record path deep-copies every support set both
    # ways, the arena path shares copy-on-write containers.
    def cycle(engine):
        def action():
            saved = engine.checkpoint()
            engine.restore(saved)
            return saved

        return action

    arena_s, _ = _best_of(cycle(arena_engine))
    record_s, _ = _best_of(cycle(record_engine))
    assert arena_engine.model == record_engine.model
    assert (
        arena_engine.support_entry_count()
        == record_engine.support_entry_count()
    )

    print_table(
        ["representation", "cycle_s", "speedup_vs_records"],
        [
            ["records", record_s, 1.0],
            ["arena", arena_s, record_s / arena_s],
        ],
        f"E20b: checkpoint + rollback cycle, "
        f"{arena_engine.support_entry_count()} support entries, best of "
        f"{REPEATS}",
    )
    # The named CI guard: copy-on-write checkpoints must keep beating the
    # record-object deep copy on the transaction rollback path.
    assert record_s / arena_s >= ARENA_COPY_MUST_WIN, (
        f"arena checkpoint+rollback only {record_s / arena_s:.2f}x faster "
        f"(bar: {ARENA_COPY_MUST_WIN}x)"
    )


def test_e20c_snapshot_encode_decode(benchmark, tmp_path):
    arena_engine, record_engine = _engines()
    states = {
        "arena": arena_engine.state_dict(),
        "records": record_engine.state_dict(),
    }

    timings = {}
    for label, state in states.items():
        directory = tmp_path / label
        directory.mkdir()
        encode_s, path = _best_of(
            lambda d=directory, s=state: write_snapshot(d, 0, s)
        )
        decode_s, decoded = _best_of(
            lambda d=directory: read_snapshot(d / snapshot_name(0))
        )
        size = path.stat().st_size
        timings[label] = (encode_s, decode_s, size, decoded[1])

    # Both snapshots restore to the same belief state.
    for label, (_, _, _, state) in timings.items():
        target = create_engine("factlevel", _workload(NODES), arena=False)
        target.load_state(state)
        assert target.model == record_engine.model, label
        assert (
            target.support_entry_count()
            == record_engine.support_entry_count()
        ), label

    arena_encode, arena_decode, arena_bytes, _ = timings["arena"]
    record_encode, record_decode, record_bytes, _ = timings["records"]
    print_table(
        ["state", "encode_s", "decode_s", "bytes"],
        [
            ["records", record_encode, record_decode, record_bytes],
            ["arena", arena_encode, arena_decode, arena_bytes],
        ],
        f"E20c: v2 snapshot of the fact-level state, best of {REPEATS}",
    )
    assert record_encode / arena_encode >= ARENA_ENCODE_FLOOR, (
        f"arena snapshot encode lost to records: "
        f"{record_encode / arena_encode:.2f}x"
    )
    benchmark(
        lambda: write_snapshot(tmp_path / "arena", 0, states["arena"])
    )


def test_e20d_checkpoint_memory():
    peaks = {}
    for label, kwargs in (("arena", {}), ("records", {"arena": False})):
        engine = create_engine("factlevel", _workload(NODES), **kwargs)
        tracemalloc.start()
        checkpoint = engine.checkpoint()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert checkpoint is not None
        peaks[label] = peak

    print_table(
        ["representation", "checkpoint_peak_bytes"],
        [
            ["records", peaks["records"]],
            ["arena", peaks["arena"]],
        ],
        "E20d: tracemalloc peak while taking one checkpoint",
    )
    # Copy-on-write sharing: the arena checkpoint allocates a small
    # constant wrapper, the record path duplicates every support set.
    assert peaks["arena"] < peaks["records"]
