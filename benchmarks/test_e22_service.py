"""E22 — the concurrent revision service: scheduled-parallel admission.

PR 10 adds the revision service: a transaction batch goes through the
argument-level commutation scheduler, the commuting groups execute in
worker threads against copy-on-write checkpoints and merge by state
delta, and the accepted transactions become durable with **one** journal
group commit (one fsync, one redo-tail check) instead of one fsync per
transaction. Two claims, both guarded:

* **E22a (scheduled-parallel beats serial admission — CI guard)** — on
  disjoint-key ledger traffic, batch admission through
  :class:`~repro.service.RevisionService` must sustain strictly more
  committed transactions per second than per-transaction serial
  admission against the same durable store, **and** the final store must
  be byte-identical: the canonical v2 snapshot written after the
  parallel run must equal the serial store's snapshot byte for byte.
  The throughput floor is deliberately modest (the engines are
  GIL-bound; the honest win is fsync amortization + one scheduling pass
  + one redo-tail check per batch) but it must be a *win*.

* **E22b (throughput rises with session count — CI guard)** — driving
  the ``asyncio`` front-end over real sockets, N concurrent sessions
  each submitting disjoint-key transactions must commit more
  transactions per second in aggregate than one session alone: the
  micro-batching writer turns concurrency into larger commuting groups
  and fewer fsyncs. The guard compares the best multi-session rate
  against the single-session rate.
"""

import asyncio
import time

from repro.bench.reporting import print_table
from repro.datalog.atoms import Atom
from repro.service import RevisionService
from repro.service.server import RevisionServer, ServiceClient
from repro.store import open_store
from repro.workloads import sharded_by_key

ACCOUNTS = 16
ROUNDS = 14
UPDATES_PER_TXN = 2
WORKERS = 4

#: E22a acceptance bar: committed-txn/sec of batch admission over
#: per-transaction serial admission. The compute is GIL-bound either
#: way; the scheduled path must still convert group commit + one
#: scheduling pass per batch into a real win, with margin for CI noise.
PARALLEL_OVER_SERIAL_FLOOR = 1.10

#: E22b acceptance bar: aggregate committed-txn/sec of the best
#: multi-session run over the single-session run through the server.
SESSIONS_SCALING_FLOOR = 1.25
SESSION_COUNTS = (1, 2, 4, 8, 16)
COMMITS_PER_SESSION = 30


def _traffic(tag: int):
    """One round of disjoint-key transactions, all fresh insertions.

    Values are partitioned by *tag* so every round (and every caller)
    stays admissible against everything committed before it.
    """
    base = 100_000 + tag * 1_000
    batch = []
    for key in range(1, ACCOUNTS + 1):
        account = f"acct{key}"
        updates = [
            ("insert_fact", Atom("deposit", (account, base + step)))
            for step in range(UPDATES_PER_TXN)
        ]
        batch.append((f"r{tag}_{account}", updates))
    return batch


def test_e22a_parallel_admission_beats_serial(tmp_path):
    program = str(sharded_by_key(accounts=ACCOUNTS))
    rounds = [_traffic(tag) for tag in range(ROUNDS)]
    total = sum(len(batch) for batch in rounds)

    serial = open_store(
        tmp_path / "serial", program=program, engine="factlevel"
    )
    started = time.perf_counter()
    for batch in rounds:
        for _, updates in batch:
            with serial.transaction():
                for operation, fact in updates:
                    serial.apply(operation, fact)
    serial_seconds = time.perf_counter() - started
    assert serial.revision == total

    store = open_store(
        tmp_path / "parallel", program=program, engine="factlevel"
    )
    committed = 0
    parallel_groups = 0
    with RevisionService(store, max_workers=WORKERS) as service:
        started = time.perf_counter()
        for batch in rounds:
            result = service.submit_batch(batch)
            committed += result.committed
            parallel_groups += result.report.parallel_groups
        parallel_seconds = time.perf_counter() - started
        assert committed == total
        assert service.revision == total
        # The disjoint-key rounds must actually take the parallel path.
        assert parallel_groups >= ROUNDS

        # Byte-identical durability: the canonical v2 snapshots of the
        # two stores must match exactly.
        parallel_snapshot = store.snapshot().read_bytes()
    serial_snapshot = serial.snapshot().read_bytes()
    serial.close()
    assert parallel_snapshot == serial_snapshot

    serial_tps = total / serial_seconds
    parallel_tps = total / parallel_seconds
    speedup = parallel_tps / serial_tps
    print_table(
        ["admission", "txns", "seconds", "txn_per_sec", "speedup"],
        [
            ["serial (per-txn fsync)", total, serial_seconds, serial_tps, 1.0],
            ["scheduled-parallel", total, parallel_seconds, parallel_tps,
             speedup],
        ],
        "E22a: batch admission vs per-transaction serial admission "
        f"({ACCOUNTS} disjoint keys, {WORKERS} workers)",
    )
    assert speedup >= PARALLEL_OVER_SERIAL_FLOOR, (
        f"scheduled-parallel admission managed only {speedup:.2f}x over "
        f"serial (floor {PARALLEL_OVER_SERIAL_FLOOR}x)"
    )


def test_e22b_throughput_rises_with_sessions(tmp_path):
    program = str(sharded_by_key(accounts=max(SESSION_COUNTS)))
    store = open_store(tmp_path / "store", program=program, engine="factlevel")
    service = RevisionService(store, max_workers=WORKERS)
    rows = []
    rates = {}

    async def run_sessions(count: int, tag: int) -> float:
        server = RevisionServer(service, batch_window=0.001)
        await server.start()
        try:
            async def session(index: int) -> None:
                client = await ServiceClient.connect(server.host, server.port)
                try:
                    account = f"acct{index + 1}"
                    base = 10_000_000 + tag * 100_000 + index * 1_000
                    for step in range(COMMITS_PER_SESSION):
                        response = await client.commit(
                            [f"+deposit({account}, {base + step})"]
                        )
                        assert response["committed"], response
                finally:
                    await client.close()

            started = time.perf_counter()
            await asyncio.gather(*(session(i) for i in range(count)))
            return time.perf_counter() - started
        finally:
            await server.stop()

    with service:
        for tag, count in enumerate(SESSION_COUNTS):
            seconds = asyncio.run(run_sessions(count, tag))
            txns = count * COMMITS_PER_SESSION
            rates[count] = txns / seconds
            rows.append([count, txns, seconds, rates[count]])
        expected = sum(SESSION_COUNTS) * COMMITS_PER_SESSION
        assert service.revision == expected

    print_table(
        ["sessions", "txns", "seconds", "txn_per_sec"],
        rows,
        "E22b: aggregate committed-transactions/sec vs session count "
        "(asyncio front-end, micro-batching writer)",
    )
    best = max(rates[count] for count in SESSION_COUNTS if count > 1)
    scaling = best / rates[1]
    assert scaling >= SESSIONS_SCALING_FLOOR, (
        f"multi-session throughput only {scaling:.2f}x the single "
        f"session (floor {SESSIONS_SCALING_FLOOR}x)"
    )
