"""E12 — section 5.2: why the paper rejects fact-level supports.

Paper claim: recording facts (not relations) with all deductions "would
lead to a solution with no migration [... but] the computation costs
incurred in the task of keeping all possible deductions is clearly too
prohibitive to be of practical interest when many facts are present."
Measured: migration stays zero while storage and build time grow with the
number of facts much faster than rule-pointer supports.
"""

from repro.bench.reporting import print_table
from repro.core.cascade_engine import CascadeEngine
from repro.core.factlevel_engine import FactLevelEngine
from repro.datalog.atoms import fact
from repro.workloads.families import reachability, review_pipeline

SIZES = (8, 14, 20)


def test_e12_storage_growth(benchmark):
    # Transitive closure is the blow-up case: path(x,z) has one deduction
    # per intermediate node, and the fact-level solution keeps them all,
    # while the rule-pointer solution stores at most one pointer per rule
    # per fact regardless of how many instantiations produced it.
    rows = []
    per_fact = []
    for nodes in SIZES:
        program = reachability(nodes=nodes, edge_probability=0.3, seed=8)
        cascade = CascadeEngine(program)
        factlevel = FactLevelEngine(program)
        model_size = len(cascade.model)
        fact_entries = factlevel.support_entry_count()
        pointer_entries = cascade.support_entry_count()
        per_fact.append(fact_entries / model_size)
        rows.append(
            [
                nodes,
                model_size,
                pointer_entries,
                pointer_entries / model_size,
                fact_entries,
                fact_entries / model_size,
            ]
        )
    print_table(
        ["nodes", "model_size", "pointer_entries", "pointer/fact",
         "factlevel_entries", "factlevel/fact"],
        rows,
        "E12: support storage on transitive closure",
    )
    # rule pointers stay O(1) per fact; fact-level entries per fact grow
    # with the number of alternative deductions (the "prohibitive" cost)
    assert all(row[3] <= 3.0 for row in rows)
    assert per_fact[-1] > per_fact[0] * 1.5
    assert per_fact[-1] > 4.0

    program = reachability(nodes=SIZES[-1], edge_probability=0.3, seed=8)
    benchmark(lambda: FactLevelEngine(program).support_entry_count())


def test_e12_zero_migration_is_paid_for(benchmark):
    program = review_pipeline(papers=60, committee=4, seed=8)
    cascade = CascadeEngine(program)
    factlevel = FactLevelEngine(program)
    updates = [
        ("insert_fact", fact("negative_review", "pc1", 1)),
        ("insert_fact", fact("negative_review", "pc2", 2)),
        ("delete_fact", fact("negative_review", "pc1", 1)),
    ]
    rows = []
    for name, engine in (("cascade", cascade), ("factlevel", factlevel)):
        migrated = 0
        for operation, subject in updates:
            migrated += len(engine.apply(operation, subject).migrated)
        assert engine.is_consistent()
        rows.append([name, migrated, engine.support_entry_count()])
    print_table(
        ["engine", "migrated", "support_entries"],
        rows,
        "E12b: zero migration vs bookkeeping, 3 updates",
    )
    assert rows[1][1] == 0  # factlevel never migrates
    assert rows[1][2] > rows[0][2]  # and pays for it in storage

    benchmark(
        lambda: FactLevelEngine(program).insert_fact(
            fact("negative_review", "pc3", 3)
        )
    )
