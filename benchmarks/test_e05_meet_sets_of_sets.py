"""E5 — Example 4 (MEET): one support per fact is not enough.

Paper claim: "only one support is kept for each deduced fact. Thus the
maintained information can be incomplete" — the PC-authored paper migrates
under the single-support solution, while keeping Pos/Neg *sets of sets*
(one element per deduction) saves it. The sweep scales the conference and
reports the support storage each solution pays.
"""

from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.datalog.atoms import fact
from repro.workloads.paper import meet

ENGINES = ("dynamic", "setofsets", "setofsets-paired", "cascade", "factlevel")
SIZES = (10, 50, 150)


def test_e05_double_deduction_protection(benchmark):
    rows = []
    for l in SIZES:
        pc_paper = fact("accepted", 1)  # authored by a committee member
        for name in ENGINES:
            engine = create_engine(name, meet(l=l))
            result = engine.insert_fact("rejected(1)")
            migrated = pc_paper in result.migrated
            rows.append(
                [
                    name,
                    l,
                    migrated,
                    len(result.migrated),
                    engine.support_entry_count(),
                    "ok" if engine.is_consistent() else "DIVERGED",
                ]
            )
            assert engine.is_consistent()
            if name == "dynamic":
                assert migrated, "single support must migrate the PC paper"
            else:
                assert not migrated, f"{name} must keep the PC paper"
    print_table(
        ["engine", "l", "pc_paper_migrated", "migrated_total",
         "support_entries", "oracle"],
        rows,
        "E5: INSERT rejected(pc_paper) into MEET(l)",
    )

    def setofsets_update():
        engine = create_engine("setofsets", meet(l=SIZES[-1]))
        return engine.insert_fact("rejected(1)")

    benchmark(setofsets_update)
