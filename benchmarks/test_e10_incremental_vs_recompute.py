"""E10 — section 3's motivation: maintain, don't recompute.

The explicit representation "is more interesting in case of frequent
queries and infrequent updates"; its price is maintenance work per update,
which must beat recomputing M(P') from scratch once the database is large
enough relative to the update's footprint. The sweep grows the database
and times one small update under the cascade engine vs the recompute
baseline.
"""

import time

from repro.bench.reporting import print_table
from repro.core.cascade_engine import CascadeEngine
from repro.core.recompute import RecomputeEngine
from repro.datalog.atoms import fact
from repro.workloads.families import review_pipeline

SIZES = (20, 80, 240)


def test_e10_update_cost_sweep(benchmark):
    rows = []
    ratios = []
    for papers in SIZES:
        program = review_pipeline(papers=papers, committee=5, seed=4)
        update = fact("negative_review", "pc1", 1)

        # time only the update, on fresh engines, best of three
        cascade_s = float("inf")
        for _ in range(3):
            engine = CascadeEngine(program)
            started = time.perf_counter()
            engine.insert_fact(update)
            cascade_s = min(cascade_s, time.perf_counter() - started)
            assert engine.is_consistent()

        recompute_s = float("inf")
        for _ in range(3):
            engine = RecomputeEngine(program)
            started = time.perf_counter()
            engine.insert_fact(update)
            recompute_s = min(recompute_s, time.perf_counter() - started)

        ratio = recompute_s / cascade_s if cascade_s else float("inf")
        ratios.append(ratio)
        rows.append([papers, cascade_s, recompute_s, ratio])
    print_table(
        ["papers", "cascade_s", "recompute_s", "recompute/cascade"],
        rows,
        "E10: one review insertion, incremental vs recompute (best of 3)",
    )
    # incremental maintenance must clearly win at the largest size
    assert ratios[-1] > 1.5
    # and the advantage must not shrink dramatically with the database
    assert ratios[-1] >= ratios[0] * 0.7

    program = review_pipeline(papers=SIZES[-1], committee=5, seed=4)
    engine = CascadeEngine(program)
    toggle = [True]

    def flip():
        if toggle[0]:
            engine.insert_fact(fact("negative_review", "pc1", 1))
        else:
            engine.delete_fact(fact("negative_review", "pc1", 1))
        toggle[0] = not toggle[0]

    benchmark(flip)


def test_e10_whole_model_flip_favours_recompute(benchmark):
    """The inverse regime: when one update touches everything (the
    negation chain), recomputation is competitive — there is a crossover,
    maintenance is not uniformly better."""
    from repro.workloads.paper import negation_chain

    n = 60
    program = negation_chain(n)

    cascade = CascadeEngine(program)
    started = time.perf_counter()
    cascade.insert_fact("p0")
    cascade_s = time.perf_counter() - started

    recompute = RecomputeEngine(program)
    started = time.perf_counter()
    recompute.insert_fact("p0")
    recompute_s = time.perf_counter() - started

    print_table(
        ["engine", "whole_flip_s"],
        [["cascade", cascade_s], ["recompute", recompute_s]],
        f"E10b: whole-model flip (chain n={n})",
    )
    # no strict assertion on who wins — the point is the gap collapses;
    # maintenance must not be an order of magnitude better here
    assert cascade_s * 50 > recompute_s

    benchmark(lambda: RecomputeEngine(program).insert_fact("p0"))
