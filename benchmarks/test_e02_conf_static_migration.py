"""E2 — Example 1 (CONF): the static solution migrates accepted(l+1).

Paper claim: "the static analysis can provide dependencies which are not
used during the construction of the model [...] the static solution leads
to a migration of the fact accepted(l+1)", which the dynamic solutions
avoid because the asserted fact carries the trivial support. The sweep also
shows the static solution's migration growing linearly with l while the
saved fact stays saved.
"""

from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.datalog.atoms import fact
from repro.workloads.paper import conf

ENGINES = ("static", "dynamic", "setofsets", "cascade", "factlevel")
SIZES = (10, 50, 200)


def test_e02_migration_sweep(benchmark):
    rows = []
    for l in SIZES:
        late = fact("accepted", l + 1)
        for name in ENGINES:
            engine = create_engine(name, conf(l=l))
            result = engine.insert_fact(f"rejected({l + 1})")
            migrated_late = late in result.migrated
            rows.append(
                [name, l, len(result.migrated), migrated_late,
                 "ok" if engine.is_consistent() else "DIVERGED"]
            )
            if name == "static":
                assert migrated_late, "static must migrate accepted(l+1)"
            else:
                assert not migrated_late, f"{name} must save accepted(l+1)"
    print_table(
        ["engine", "l", "migrated_total", "late_paper_migrated", "oracle"],
        rows,
        "E2: INSERT rejected(l+1) into CONF(l)",
    )

    def static_insert():
        engine = create_engine("static", conf(l=SIZES[-1]))
        return engine.insert_fact(f"rejected({SIZES[-1] + 1})")

    benchmark(static_insert)
