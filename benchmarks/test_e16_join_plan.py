"""E16 — selectivity-ordered join plans vs. the written clause order.

Not a claim of the paper: the paper assumes SAT(P, M) is cheap and
correct; this experiment checks the "cheap". The planner compiles every
clause into a join plan whose positive literals are greedily reordered by
estimated selectivity (relation cardinality, discounted per bound column).
``Planner(reorder=False)`` executes the written left-to-right order — the
pre-planner behaviour — so the two runs differ only in join order.

E16a is the adversarial shape: a huge relation written first, a tiny
filter written last. The planner must start from the filter and
index-probe the big relation, and win by well over the acceptance bar of
1.5x. E16b runs the family workloads, where written orders are already
sensible — the planner must stay at parity (no regression from planning
overhead).
"""

import time

from repro.bench.reporting import print_table
from repro.datalog.atoms import Atom
from repro.datalog.builder import ProgramBuilder
from repro.datalog.evaluation import semi_naive_saturate
from repro.datalog.model import Model
from repro.datalog.plan import Planner
from repro.workloads.families import (
    access_control,
    bill_of_materials,
    reachability,
    review_pipeline,
)

BIG_ROWS = (10_000, 20_000, 40_000)
BUCKETS = 200  # distinct join keys in the big relation
PROBES = 4  # rows in the driving filter


def _star_rule():
    builder = ProgramBuilder()
    builder.rule("hit", ("Y",)).pos("big", "X", "Y").pos("probe", "X")
    return builder.build().rules


def _star_model(rows: int) -> Model:
    model = Model()
    for i in range(rows):
        model.add(Atom("big", (i % BUCKETS, i)))
    for i in range(PROBES):
        model.add(Atom("probe", (i * 7,)))
    return model


def _time_saturation(rules, make_model, planner, repeats: int = 3) -> float:
    """Best-of-N wall clock, so a CI scheduling hiccup cannot fail E16."""
    best = float("inf")
    for _ in range(repeats):
        model = make_model()
        started = time.perf_counter()
        semi_naive_saturate(rules, model, planner=planner)
        best = min(best, time.perf_counter() - started)
    return best


def test_e16_join_heavy_star(benchmark):
    """The planner must beat left-to-right by >= 1.5x on the star join."""
    rules = _star_rule()
    rows_out = []
    speedups = []
    for rows in BIG_ROWS:
        ltr_s = _time_saturation(
            rules, lambda: _star_model(rows), Planner(reorder=False)
        )
        planned_s = _time_saturation(
            rules, lambda: _star_model(rows), Planner()
        )
        # same result either way
        model_a, model_b = _star_model(rows), _star_model(rows)
        assert semi_naive_saturate(
            rules, model_a, planner=Planner(reorder=False)
        ) == semi_naive_saturate(rules, model_b, planner=Planner())
        speedup = ltr_s / planned_s
        speedups.append(speedup)
        rows_out.append([rows, ltr_s, planned_s, speedup])
    print_table(
        ["big_rows", "left_to_right_s", "planned_s", "speedup"],
        rows_out,
        "E16a: star join (big scanned vs. probe-driven)",
    )
    # Acceptance bar (ISSUE 3): >= 1.5x on a join-heavy workload.
    assert max(speedups) >= 1.5

    model = _star_model(BIG_ROWS[0])
    benchmark(lambda: semi_naive_saturate(rules, model.copy()))


def test_e16_family_workloads_no_regression(benchmark):
    """Family workloads: sensible written orders, planner stays at parity."""
    from repro.datalog.evaluation import compute_model

    builders = {
        "review_pipeline": lambda: review_pipeline(papers=120),
        "reachability": lambda: reachability(nodes=22, seed=16),
        "bill_of_materials": lambda: bill_of_materials(
            assemblies=10, depth=4, seed=16
        ),
        "access_control": lambda: access_control(users=40, seed=16),
    }
    def best_of(program, planner, repeats=3):
        best, model = float("inf"), None
        for _ in range(repeats):
            started = time.perf_counter()
            model = compute_model(program, planner=planner)
            best = min(best, time.perf_counter() - started)
        return best, model

    rows_out = []
    for name, build in builders.items():
        program = build()
        ltr_s, ltr_model = best_of(program, Planner(reorder=False))
        planned_s, planned_model = best_of(program, Planner())
        assert planned_model == ltr_model, name
        rows_out.append([name, ltr_s, planned_s, ltr_s / planned_s])
    print_table(
        ["workload", "left_to_right_s", "planned_s", "speedup"],
        rows_out,
        "E16b: family workloads (parity expected)",
    )
    # planning overhead must never cost an order of magnitude
    assert all(row[3] > 0.25 for row in rows_out)

    program = review_pipeline(papers=120)
    benchmark(lambda: compute_model(program, planner=Planner()))
