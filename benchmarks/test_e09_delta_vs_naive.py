"""E9 — section 5.2: the delta-driven mechanism of [RLK].

Paper claim: "the interest in the delta driven mechanism stems from the
fact that it can be efficiently implemented using standard database
operations"; naive iteration re-fires every rule on every round, while the
delta mechanism fires only helpful rules against the increments.

The mechanism wins where saturation needs many rounds (long derivation
chains: the per-round delta is small while naive re-joins everything); on
dense few-round workloads the two are at parity — both shapes are measured
and recorded in EXPERIMENTS.md.
"""

import time

from repro.bench.reporting import print_table
from repro.datalog.builder import ProgramBuilder
from repro.datalog.evaluation import compute_model
from repro.workloads.families import reachability

CHAIN_SIZES = (30, 60, 100)


def _chain_tc(n: int):
    builder = ProgramBuilder()
    for i in range(n):
        builder.fact("edge", i, i + 1)
    builder.rule("path", ("X", "Y")).pos("edge", "X", "Y")
    builder.rule("path", ("X", "Z")).pos("edge", "X", "Y").pos(
        "path", "Y", "Z"
    )
    return builder.build()


def _time(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_e09_chain_many_rounds(benchmark):
    rows = []
    speedups = []
    for n in CHAIN_SIZES:
        program = _chain_tc(n)
        naive_s = _time(lambda: compute_model(program, method="naive"))
        delta_s = _time(lambda: compute_model(program, method="seminaive"))
        assert compute_model(program, method="naive") == compute_model(
            program, method="seminaive"
        )
        speedup = naive_s / delta_s
        speedups.append(speedup)
        rows.append([n, naive_s, delta_s, speedup])
    print_table(
        ["chain_n", "naive_s", "delta_s", "speedup"],
        rows,
        "E9a: transitive closure of a chain (rounds ~ n)",
    )
    # the delta mechanism must win, and win more as derivations lengthen
    assert speedups[-1] > 3.0
    assert speedups[-1] > speedups[0]

    program = _chain_tc(CHAIN_SIZES[-1])
    benchmark(lambda: compute_model(program, method="seminaive"))


def test_e09_dense_few_rounds(benchmark):
    rows = []
    for nodes in (14, 20, 26):
        program = reachability(nodes=nodes, edge_probability=0.25, seed=9)
        naive_s = _time(lambda: compute_model(program, method="naive"))
        delta_s = _time(lambda: compute_model(program, method="seminaive"))
        assert compute_model(program, method="naive") == compute_model(
            program, method="seminaive"
        )
        rows.append([nodes, naive_s, delta_s, naive_s / delta_s])
    print_table(
        ["nodes", "naive_s", "delta_s", "speedup"],
        rows,
        "E9b: dense reachability (2-3 rounds): near parity",
    )
    # few rounds: neither may be an order of magnitude worse
    assert all(0.3 < row[3] < 10 for row in rows)

    program = reachability(nodes=26, edge_probability=0.25, seed=9)
    benchmark(lambda: compute_model(program, method="seminaive"))


def test_e09_delta_compatible_supports(benchmark):
    """Section 5.2's implementation argument: one-level rule-pointer
    supports add O(1) work per delta, so support maintenance rides the
    delta mechanism; the per-deduction ⊕-combination of 4.3 cannot."""
    from repro.core.cascade_engine import CascadeEngine
    from repro.core.setofsets_engine import SetOfSetsEngine

    program = reachability(nodes=14, edge_probability=0.25, seed=9)
    cascade_s = _time(lambda: CascadeEngine(program))
    setofsets_s = _time(lambda: SetOfSetsEngine(program))
    print_table(
        ["support form", "build_s"],
        [["rule pointers (5.1)", cascade_s],
         ["sets of sets (4.3)", setofsets_s]],
        "E9c: model+support construction cost",
    )
    assert cascade_s < setofsets_s

    benchmark(lambda: CascadeEngine(program))
