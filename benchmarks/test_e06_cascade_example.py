"""E6 — Section 5.1: the cascade avoids the removal of q.

Paper claim: on P = {r <- p, q <- r, q <- not p}, "INSERT(p) if computed
using the previous version leads to the removal of q, followed by the
insertion of p and r and finally the insertion of q. In the above version
the removal of q does not take place."

The printed pseudocode (REMOVEPOS; REMOVENEG; SATURATE) does *not* realise
that sentence — it removes q and re-adds it. Saturating first does. Both
orders are measured; the discrepancy is documented in DESIGN.md
(faithfulness note 2).
"""

from repro.bench.reporting import print_table
from repro.core.registry import create_engine
from repro.datalog.atoms import fact
from repro.workloads.paper import cascade_example

ENGINES = ("static", "dynamic", "setofsets", "cascade-paper", "cascade",
           "factlevel")


def test_e06_removal_of_q(benchmark):
    rows = []
    for name in ENGINES:
        engine = create_engine(name, cascade_example())
        result = engine.insert_fact("p")
        rows.append(
            [
                name,
                fact("q") in result.removed,
                fact("q") in result.migrated,
                "ok" if engine.is_consistent() else "DIVERGED",
            ]
        )
        assert engine.is_consistent()
    print_table(
        ["engine", "q_removed", "q_migrated", "oracle"],
        rows,
        "E6: INSERT p into {r :- p. q :- r. q :- not p.}",
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["cascade"][1] is False, "saturate-first must not remove q"
    assert by_name["cascade-paper"][1] is True, "printed order removes q"
    for older in ("static", "dynamic", "setofsets"):
        assert by_name[older][2] is True, f"{older} must migrate q"

    def cascade_insert():
        engine = create_engine("cascade", cascade_example())
        return engine.insert_fact("p")

    benchmark(cascade_insert)
