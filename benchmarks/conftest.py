"""Shared fixtures for the experiment benchmarks.

Every experiment Exx reproduces one claim of Apt & Pugin (PODS 1987); the
mapping is in DESIGN.md section 6 and the measured outcomes are recorded in
EXPERIMENTS.md. Benchmarks print their tables so
``pytest benchmarks/ --benchmark-only -s`` regenerates every number quoted
there.
"""

from repro.bench.reporting import artifact_dir


def pytest_configure(config):
    # All bench artifacts (traces, expositions, --benchmark-json targets)
    # live in the gitignored benchmarks/out/; create it up front so
    # pytest-benchmark's JSON writer never hits a missing directory.
    artifact_dir()
