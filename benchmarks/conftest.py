"""Shared fixtures for the experiment benchmarks.

Every experiment Exx reproduces one claim of Apt & Pugin (PODS 1987); the
mapping is in DESIGN.md section 6 and the measured outcomes are recorded in
EXPERIMENTS.md. Benchmarks print their tables so
``pytest benchmarks/ --benchmark-only -s`` regenerates every number quoted
there.
"""

import pytest


def pytest_configure(config):
    # The experiment tables are the point of these benches: show them even
    # without -s by printing to the terminalreporter at the end would be
    # noisy; we simply rely on -s or captured output in CI logs.
    pass
