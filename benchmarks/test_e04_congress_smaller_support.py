"""E4 — Example 3 (CONGRESS): prefer the pairwise-smaller support.

Paper claim: when a second deduction yields a pairwise smaller (Pos, Neg)
pair it should replace the recorded one, "because an insertion of a fact
rejected(i) will not lead then to a migration of the fact accepted(l)".
The ablation toggles the keep-smaller policy.
"""

from repro.bench.reporting import print_table
from repro.core.dynamic_engine import DynamicEngine
from repro.datalog.atoms import fact
from repro.workloads.paper import congress

SIZES = (10, 50, 200)


def test_e04_keep_smaller_ablation(benchmark):
    rows = []
    for l in SIZES:
        protected = fact("accepted", l)
        for keep_smaller in (True, False):
            engine = DynamicEngine(congress(l=l), keep_smaller=keep_smaller)
            result = engine.insert_fact(f"rejected({l})")
            migrated = protected in result.migrated
            rows.append(
                [
                    "keep-smaller" if keep_smaller else "keep-first",
                    l,
                    len(result.migrated),
                    migrated,
                    "ok" if engine.is_consistent() else "DIVERGED",
                ]
            )
            assert engine.is_consistent()
            if keep_smaller:
                assert not migrated
            else:
                assert migrated
    print_table(
        ["policy", "l", "migrated_total", "accepted(l)_migrated", "oracle"],
        rows,
        "E4: INSERT rejected(l) into CONGRESS(l)",
    )

    def update():
        engine = DynamicEngine(congress(l=SIZES[-1]))
        return engine.insert_fact(f"rejected({SIZES[-1]})")

    benchmark(update)
